package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/steal"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// DefaultStealWindow is the refill batch size when Local.Window is
// unset: one trip to the policy under the refill lock yields up to
// this many chunks, one executed immediately and the rest parked in
// the worker's deque for later pops or steals. It mirrors the wire
// path's credit window (PR 5): larger windows amortise the lock but
// delay feedback and re-planning, which only see ACP at refill time.
const DefaultStealWindow = 8

func (l *Local) stealWindow() int {
	if l.Window > 0 {
		return l.Window
	}
	return DefaultStealWindow
}

// stealRun is the shared state of one work-stealing execution: the
// per-worker deques and counters, plus everything the channel master
// kept private, now guarded by the refill mutex so the scheme policy
// (not concurrency-safe by contract) and the replan/feedback path stay
// single-threaded even though grants happen on whichever worker ran
// dry first.
type stealRun struct {
	l    *Local
	w    workload.Workload
	body func(i int)
	dist bool
	p    int

	virtual func(i int) float64
	start   time.Time

	deques   []*steal.Deque
	counters []steal.Counters
	scratch  [][]sched.Assignment // per-worker refill buffers

	// granted/completed/drained implement termination without a
	// master: drained flips when the policy runs dry (it can never
	// un-dry — a re-plan covers only the remaining iterations, which
	// is zero by then), after which granted is frozen; workers exit
	// once drained && completed == granted, i.e. every granted
	// iteration has been executed by somebody.
	granted   atomic.Int64
	completed atomic.Int64
	drained   atomic.Bool

	mu      sync.Mutex // guards everything below
	policy  sched.Policy
	liveACP []int
	planACP []int
	base    int
	chunks  int
	replans int
}

// runSteal executes the loop with per-worker Chase–Lev deques instead
// of a channel master. Each worker pops its own deque (LIFO), then
// scans victims (FIFO steal), and only when the whole system looks
// empty takes the refill lock to pull a fresh batch from the policy —
// so the serialised section runs once per window, not once per chunk.
func (l *Local) runSteal(ctx context.Context, w workload.Workload, body func(i int)) (metrics.Report, error) {
	p := len(l.Workers)
	dist := sched.Distributed(l.Scheme)
	var rep metrics.Report
	rep.Scheme = l.Scheme.Name()
	rep.Workload = w.Name()
	rep.Workers = p

	maxScale := 1
	for _, ws := range l.Workers {
		if ws.scale() > maxScale {
			maxScale = ws.scale()
		}
	}
	window := l.stealWindow()
	s := &stealRun{
		l: l, w: w, body: body, dist: dist, p: p,
		virtual: func(i int) float64 {
			return float64(maxScale) / float64(l.Workers[i].scale())
		},
		deques:   make([]*steal.Deque, p),
		counters: make([]steal.Counters, p),
		scratch:  make([][]sched.Assignment, p),
		liveACP:  make([]int, p),
		planACP:  make([]int, p),
	}
	for i := 0; i < p; i++ {
		s.deques[i] = steal.NewDeque(window)
		s.scratch[i] = make([]sched.Assignment, 0, window)
	}

	// The paper's master gathers every worker's first ACP report
	// before planning (step 1(a)). With no master goroutine we take
	// the reports synchronously here — equivalent, since no work has
	// been granted yet.
	if dist {
		for i := 0; i < p; i++ {
			s.liveACP[i] = l.ACP.ACP(s.virtual(i), 1+l.Workers[i].Load())
		}
	}
	var err error
	s.policy, err = s.plan()
	if err != nil {
		return rep, err
	}

	s.start = time.Now()
	if l.Trace != nil {
		l.Trace.Scheme = l.Scheme.Name()
		l.Trace.Workload = w.Name()
		l.Trace.Workers = p
	}
	times := make([]metrics.Times, p)
	iters := make([]int64, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(ctx, id, &times[id], &iters[id])
		}(i)
	}
	wg.Wait()

	rep.Tp = time.Since(s.start).Seconds()
	rep.Chunks = s.chunks
	rep.Replans = s.replans
	for i := 0; i < p; i++ {
		rep.PerWorker = append(rep.PerWorker, times[i])
		rep.Iterations += int(iters[i])
		rep.Steals += int(s.counters[i].Steals)
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("exec: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

// plan builds a policy over the remaining iterations, offset past what
// has already been granted. Caller holds s.mu (or is pre-spawn).
func (s *stealRun) plan() (sched.Policy, error) {
	cfg := sched.Config{Iterations: s.w.Len() - s.base, Workers: s.p}
	if s.dist {
		powers := make([]float64, s.p)
		for i, a := range s.liveACP {
			if a < 1 {
				a = 1
			}
			powers[i] = float64(a)
		}
		cfg.Powers = powers
	}
	pol, err := s.l.Scheme.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	copy(s.planACP, s.liveACP)
	return sched.Offset(pol, s.base), nil
}

// refill is the steal engine's stand-in for one master round-trip: it
// reports the worker's current ACP, applies any pending feedback,
// re-plans on majority ACP change, and pulls up to a window of chunks
// from the policy. The first chunk is returned for immediate
// execution; the rest land in the worker's (empty — refill only runs
// after its own pop failed, and thieves never add) deque.
func (s *stealRun) refill(id, acpNow int, fbWork, fbElapsed float64) (sched.Assignment, bool) {
	l, bus := s.l, s.l.Telemetry
	c := &s.counters[id]
	reqAt := bus.Now()
	bus.Publish(telemetry.Event{
		Kind: telemetry.ChunkRequested, Worker: id,
		ACP: acpNow, At: reqAt,
	})
	batch := s.scratch[id][:0]
	window := cap(s.scratch[id])

	s.mu.Lock()
	s.liveACP[id] = acpNow
	if fb, ok := s.policy.(sched.FeedbackPolicy); ok && fbElapsed > 0 {
		fb.Feedback(id, fbWork, fbElapsed)
	}
	if s.dist && !l.DisableReplan && acp.MajorityChanged(s.planACP, s.liveACP) {
		if p2, err2 := s.plan(); err2 == nil {
			s.policy = p2
			s.replans++
			bus.Publish(telemetry.Event{
				Kind: telemetry.StageAdvanced, Worker: id,
				At: bus.Now(),
			})
		}
	}
	for len(batch) < window {
		a, ok := s.policy.Next(sched.Request{Worker: id, ACP: float64(acpNow)})
		if !ok {
			s.drained.Store(true)
			break
		}
		s.base = a.End()
		s.chunks++
		s.granted.Add(int64(a.Size))
		now := bus.Now()
		bus.Publish(telemetry.Event{
			Kind: telemetry.ChunkGranted, Worker: id,
			Start: a.Start, Size: a.Size, ACP: acpNow,
			At: now, Seconds: now - reqAt,
		})
		batch = append(batch, a)
	}
	s.mu.Unlock()

	if len(batch) == 0 {
		return sched.Assignment{}, false
	}
	for _, a := range batch[1:] {
		s.deques[id].Push(a) // cannot fail: deque empty, cap >= window
	}
	c.Refills++
	c.RefillChunks += int64(len(batch))
	bus.Publish(telemetry.Event{
		Kind: telemetry.DequeRefilled, Worker: id,
		Start: batch[0].Start, Size: len(batch),
		ACP: acpNow, At: bus.Now(),
	})
	return batch[0], true
}

// stealFrom scans the other workers' deques starting just past the
// thief, taking the first (oldest) chunk it finds.
func (s *stealRun) stealFrom(id int) (sched.Assignment, bool) {
	c := &s.counters[id]
	for off := 1; off < s.p; off++ {
		victim := (id + off) % s.p
		if a, ok := s.deques[victim].Steal(); ok {
			c.Steals++
			s.l.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.ChunkStolen, Worker: id, Shard: victim,
				Start: a.Start, Size: a.Size,
				At: s.l.Telemetry.Now(),
			})
			return a, true
		}
	}
	c.FailedSteals++
	return sched.Assignment{}, false
}

// worker is one goroutine's acquire–execute loop: own pop, then steal,
// then refill, spinning (with Gosched) only in the terminal window
// where the policy is dry but granted chunks still sit in deques.
func (s *stealRun) worker(ctx context.Context, id int, times *metrics.Times, iters *int64) {
	l, bus := s.l, s.l.Telemetry
	spec := l.Workers[id]
	own := s.deques[id]
	c := &s.counters[id]
	bus.Publish(telemetry.Event{
		Kind: telemetry.WorkerJoined, Worker: id,
		At: bus.Now(),
	})
	var fbWork, fbElapsed float64
	acpNow := l.ACP.ACP(s.virtual(id), 1+spec.Load())
	for {
		if ctx.Err() != nil {
			return
		}
		waitStart := time.Now()
		a, ok := own.Pop()
		if ok {
			c.Pops++
		}
		if !ok {
			a, ok = s.stealFrom(id)
		}
		if !ok {
			acpNow = l.ACP.ACP(s.virtual(id), 1+spec.Load())
			a, ok = s.refill(id, acpNow, fbWork, fbElapsed)
			fbWork, fbElapsed = 0, 0
		}
		if !ok {
			if s.drained.Load() && s.completed.Load() >= s.granted.Load() {
				return
			}
			// Granted work is still in flight in other deques (or the
			// policy will yield more once someone reports): yield and
			// rescan rather than block.
			runtime.Gosched()
			continue
		}
		times.Wait += time.Since(waitStart).Seconds()
		compStart := time.Now()
		for it := a.Start; it < a.End(); it++ {
			for rep := 0; rep < spec.scale(); rep++ {
				s.body(it)
			}
		}
		fbWork = workload.RangeCost(s.w, a.Start, a.End())
		fbElapsed = time.Since(compStart).Seconds() // single reading: feedback == Comp == trace span
		times.Comp += fbElapsed
		*iters += int64(a.Size)
		s.completed.Add(int64(a.Size))
		bus.Publish(telemetry.Event{
			Kind: telemetry.ChunkCompleted, Worker: id,
			Start: a.Start, Size: a.Size, ACP: acpNow,
			At: bus.Now(), Seconds: fbElapsed,
		})
		if l.Trace != nil {
			begin := compStart.Sub(s.start).Seconds()
			l.Trace.Add(trace.Event{
				Worker: id,
				Start:  a.Start,
				Size:   a.Size,
				Begin:  begin,
				End:    begin + fbElapsed,
				ACP:    acpNow,
			})
		}
	}
}
