// Package exec runs parallel loops for real — not simulated — under
// any self-scheduling scheme: Local drives goroutine workers through
// an in-process master (the shared-memory analogue of the paper's MPI
// program), and Master/Worker in rpc.go speak net/rpc over TCP, which
// is the stdlib stand-in for the paper's mpich master–slave processes.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/telemetry/hist"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// WorkerSpec emulates one heterogeneous slave inside a single process.
type WorkerSpec struct {
	// WorkScale repeats each iteration's body this many times,
	// emulating a machine 1/WorkScale as fast (1 = full speed).
	WorkScale int
	// Load is an externally adjustable run-queue surrogate: the
	// number of competing processes beyond the loop itself. Workers
	// report ACP = model.ACP(V, 1+Load) with V = 1/WorkScale relative
	// to the slowest worker. Mutate it with AddLoad.
	load atomic.Int64
}

// AddLoad adjusts the emulated external load (may go negative deltas;
// the floor is zero). The clamp is a CompareAndSwap loop so concurrent
// adjusters compose: a plain Add-then-Store(0) could overwrite another
// goroutine's delta that landed between the add and the store, or
// resurrect a stale negative floor.
func (w *WorkerSpec) AddLoad(delta int) {
	for {
		cur := w.load.Load()
		next := cur + int64(delta)
		if next < 0 {
			next = 0
		}
		if w.load.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Load returns the current emulated external load.
func (w *WorkerSpec) Load() int { return int(w.load.Load()) }

func (w *WorkerSpec) scale() int {
	if w.WorkScale < 1 {
		return 1
	}
	return w.WorkScale
}

// Local executes a loop with one goroutine per worker and a
// channel-based master, faithfully implementing the paper's protocol:
// idle workers request work (attaching their ACP), the master answers
// with an iteration range from the scheme's policy and re-plans when a
// majority of ACPs changed.
type Local struct {
	Scheme  sched.Scheme
	Workers []*WorkerSpec
	// ACP is the availability model for distributed schemes.
	ACP acp.Model
	// DisableReplan turns off the majority re-plan (ablation).
	DisableReplan bool
	// Trace, when non-nil, records each computed chunk with
	// wall-clock timestamps relative to Run's start.
	Trace *trace.Trace
	// Telemetry, when non-nil, receives live protocol events
	// (requests, grants, completions, replans). Independent of Trace.
	Telemetry *telemetry.Bus
	// Engine selects the in-process runtime: EngineChannel (the
	// default, also chosen by "") drives one master goroutine over an
	// unbuffered channel exactly as the paper's protocol reads;
	// EngineSteal runs per-worker Chase–Lev deques with batched policy
	// refills (see internal/steal and docs/LOCAL.md).
	Engine string
	// Window caps how many chunks one steal-engine refill pulls from
	// the policy in a single trip under the refill lock (<=0 means
	// DefaultStealWindow). Ignored by the channel engine.
	Window int
	// Ledger requests the scheduling-step ledger for steal-engine
	// refills: one fetch-and-add claims the whole window, no refill
	// mutex. Empty uses DefaultLedger (the LOOPSCHED_LEDGER environment
	// variable); schemes that are not step-deterministic silently keep
	// the policy path. Ignored by the channel engine.
	Ledger LedgerMode
}

// Local engine names for Local.Engine.
const (
	EngineChannel = "channel"
	EngineSteal   = "steal"
)

type localRequest struct {
	worker    int
	acp       int
	fbWork    float64 // cost of the previous chunk (0 = none)
	fbElapsed float64 // its measured execution time
	at        float64 // send instant on the telemetry clock (0 = no bus)
	reply     chan localReply
}

type localReply struct {
	assign sched.Assignment
	ok     bool
}

// Run executes body(i) exactly once for every iteration i of the
// workload, scheduling with the configured scheme, and reports
// measured times. body must be safe for concurrent invocation on
// distinct iterations.
//
// Deprecated: Run is the legacy context-free adapter; use the public
// loopsched.Run(ctx, RunSpec{Backend: BackendLocal, …}), which
// validates the spec, wires telemetry and honours cancellation (or
// RunContext when driving a Local directly).
func (l *Local) Run(w workload.Workload, body func(i int)) (metrics.Report, error) {
	return l.RunContext(context.Background(), w, body)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// master stops handing out chunks, the workers drain, and the call
// returns ctx's error. Iterations already started still complete
// (the body is never interrupted mid-iteration).
func (l *Local) RunContext(ctx context.Context, w workload.Workload, body func(i int)) (metrics.Report, error) {
	p := len(l.Workers)
	if p == 0 {
		return metrics.Report{}, fmt.Errorf("exec: no workers")
	}
	switch l.Engine {
	case "", EngineChannel:
	case EngineSteal:
		return l.runSteal(ctx, w, body)
	default:
		return metrics.Report{}, fmt.Errorf("exec: unknown local engine %q (want %q or %q)", l.Engine, EngineChannel, EngineSteal)
	}
	dist := sched.Distributed(l.Scheme)

	maxScale := 1
	for _, ws := range l.Workers {
		if ws.scale() > maxScale {
			maxScale = ws.scale()
		}
	}
	virtual := func(i int) float64 {
		return float64(maxScale) / float64(l.Workers[i].scale())
	}

	requests := make(chan localRequest)
	var wg sync.WaitGroup
	times := make([]metrics.Times, p)
	iters := make([]int64, p)
	waitHist := hist.NewSharded(p)
	compHist := hist.NewSharded(p)

	start := time.Now()
	if l.Trace != nil {
		l.Trace.Scheme = l.Scheme.Name()
		l.Trace.Workload = w.Name()
		l.Trace.Workers = p
	}
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			spec := l.Workers[id]
			reply := make(chan localReply, 1)
			l.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.WorkerJoined, Worker: id,
				At: l.Telemetry.Now(),
			})
			var fbWork, fbElapsed float64
			for {
				a := l.ACP.ACP(virtual(id), 1+spec.Load())
				reqAt := l.Telemetry.Now()
				l.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.ChunkRequested, Worker: id,
					ACP: a, At: reqAt,
				})
				waitStart := time.Now()
				select {
				case requests <- localRequest{worker: id, acp: a,
					fbWork: fbWork, fbElapsed: fbElapsed, at: reqAt, reply: reply}:
				case <-ctx.Done():
					return
				}
				r := <-reply // an accepted request is always answered
				wait := time.Since(waitStart).Seconds()
				times[id].Wait += wait
				if !r.ok {
					return
				}
				waitHist.Record(id, wait)
				compStart := time.Now()
				for it := r.assign.Start; it < r.assign.End(); it++ {
					for rep := 0; rep < spec.scale(); rep++ {
						body(it)
					}
				}
				fbWork = workload.RangeCost(w, r.assign.Start, r.assign.End())
				// One reading serves the feedback loop, the Comp metric
				// and the trace span: separate time.Since calls drift
				// apart by the work between them, so Feedback would see
				// an elapsed time that never equals the reported Comp.
				fbElapsed = time.Since(compStart).Seconds()
				times[id].Comp += fbElapsed
				compHist.Record(id, fbElapsed)
				atomic.AddInt64(&iters[id], int64(r.assign.Size))
				l.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.ChunkCompleted, Worker: id,
					Start: r.assign.Start, Size: r.assign.Size, ACP: a,
					Span: telemetry.SpanID(0, r.assign.Start),
					At:   l.Telemetry.Now(), Seconds: fbElapsed,
				})
				if l.Trace != nil {
					begin := compStart.Sub(start).Seconds()
					l.Trace.Add(trace.Event{
						Worker: id,
						Start:  r.assign.Start,
						Size:   r.assign.Size,
						Begin:  begin,
						End:    begin + fbElapsed,
						ACP:    a,
					})
				}
			}
		}(i)
	}

	rep, err := l.master(ctx, w, p, dist, requests)
	wg.Wait()
	close(requests) // lets a failed master's drain goroutine exit
	rep.Tp = time.Since(start).Seconds()
	rep.GrantLatency = waitHist.Snapshot().Summarize()
	rep.CompLatency = compHist.Snapshot().Summarize()
	rep.Scheme = l.Scheme.Name()
	rep.Workload = w.Name()
	rep.Workers = p
	for i := 0; i < p; i++ {
		rep.PerWorker = append(rep.PerWorker, times[i])
		rep.Iterations += int(iters[i])
	}
	if err != nil {
		return rep, err
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("exec: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

// master services requests until the loop is exhausted and every
// worker has been told to stop, or the context is cancelled.
func (l *Local) master(ctx context.Context, w workload.Workload, p int, dist bool, requests chan localRequest) (metrics.Report, error) {
	var rep metrics.Report
	liveACP := make([]int, p)
	planACP := make([]int, p)
	base := 0

	plan := func() (sched.Policy, error) {
		cfg := sched.Config{Iterations: w.Len() - base, Workers: p}
		if dist {
			powers := make([]float64, p)
			for i, a := range liveACP {
				if a < 1 {
					a = 1
				}
				powers[i] = float64(a)
			}
			cfg.Powers = powers
		}
		pol, err := l.Scheme.NewPolicy(cfg)
		if err != nil {
			return nil, err
		}
		copy(planACP, liveACP)
		return sched.Offset(pol, base), nil
	}

	var policy sched.Policy
	var pending []localRequest

	// Distributed masters gather every worker's first report before
	// planning (paper master step 1(a)).
	if dist {
		seen := make([]bool, p)
		n := 0
		for n < p {
			select {
			case req := <-requests:
				liveACP[req.worker] = req.acp
				if !seen[req.worker] {
					seen[req.worker] = true
					n++
				}
				pending = append(pending, req)
			case <-ctx.Done():
				for _, req := range pending {
					req.reply <- localReply{}
				}
				return rep, ctx.Err()
			}
		}
	}
	var err error
	policy, err = plan()
	if err != nil {
		// Drain workers so they exit.
		go func() {
			for req := range requests {
				req.reply <- localReply{}
			}
		}()
		return rep, err
	}

	stopped := 0
	serve := func(req localRequest) {
		liveACP[req.worker] = req.acp
		if fb, ok := policy.(sched.FeedbackPolicy); ok && req.fbElapsed > 0 {
			fb.Feedback(req.worker, req.fbWork, req.fbElapsed)
		}
		if dist && !l.DisableReplan && acp.MajorityChanged(planACP, liveACP) {
			if p2, err2 := plan(); err2 == nil {
				policy = p2
				rep.Replans++
				l.Telemetry.Publish(telemetry.Event{
					Kind: telemetry.StageAdvanced, Worker: req.worker,
					At: l.Telemetry.Now(),
				})
			}
		}
		a, ok := policy.Next(sched.Request{Worker: req.worker, ACP: float64(req.acp)})
		if !ok {
			stopped++
			req.reply <- localReply{}
			return
		}
		base = a.End()
		rep.Chunks++
		now := l.Telemetry.Now()
		l.Telemetry.Publish(telemetry.Event{
			Kind: telemetry.ChunkGranted, Worker: req.worker,
			Start: a.Start, Size: a.Size, ACP: req.acp,
			Span: telemetry.SpanID(0, a.Start),
			At:   now, Seconds: now - req.at,
		})
		req.reply <- localReply{assign: a, ok: true}
	}
	for _, req := range pending {
		serve(req)
	}
	for stopped < p {
		select {
		case req := <-requests:
			serve(req)
		case <-ctx.Done():
			return rep, ctx.Err()
		}
	}
	return rep, nil
}
