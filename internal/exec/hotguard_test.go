package exec

import (
	"sort"
	"testing"

	"loopsched/internal/hotpath"
	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// hotGuards is this package's alloc-guard table: one entry per
// //lint:loopsched-hotpath function, checked against the annotations
// by TestHotPathGuardTable. The single guard drives the steal engine's
// whole per-chunk cycle — pop, steal, refill, complete — because those
// operations only occur interleaved.
var hotGuards = map[string]func(t *testing.T){
	"(*JobState).Pop":      jobStateCycleGuard,
	"(*JobState).Steal":    jobStateCycleGuard,
	"(*JobState).Complete": jobStateCycleGuard,
}

// TestHotPathGuardTable pins hotGuards to the annotation set.
func TestHotPathGuardTable(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	missing, stale, err := hotpath.TableErrors(".", names)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range missing {
		t.Errorf("annotated hot function %s has no alloc guard; add a hotGuards entry", name)
	}
	for _, name := range stale {
		t.Errorf("hotGuards entry %s matches no annotated function; remove it or annotate", name)
	}
}

// TestHotPathAllocGuards runs every guard in the table.
func TestHotPathAllocGuards(t *testing.T) {
	names := make([]string, 0, len(hotGuards))
	for name := range hotGuards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, hotGuards[name])
	}
}

// jobStateCycleGuard pins the per-chunk cycle with telemetry disabled
// (a nil bus, the steady-state default for headless runs) at zero
// allocations: pop from the own deque, steal from a sibling, refill
// from the policy, complete — the same interleaving the engine's
// worker loop performs per chunk.
func jobStateCycleGuard(t *testing.T) {
	js, err := NewJobState(JobConfig{
		Scheme:   sched.CSSScheme{K: 4},
		Workload: workload.Uniform{N: 1 << 30},
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		a, ok := js.Pop(0)
		if !ok {
			a, ok = js.Steal(0)
		}
		if !ok {
			// Refill the sibling, so the next rounds exercise Steal too.
			if _, _, ok = js.Refill(1, 1, 0, 0); !ok {
				panic("policy drained mid-guard")
			}
			a, _, _ = js.Refill(0, 1, 0, 0)
		}
		js.Complete(0, a, 1, 0)
	}); avg > 0 {
		t.Errorf("pop/steal/refill/complete cycle allocates %.1f objects per op, want 0", avg)
	}
}
