package exec

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// The RPC runtime mirrors the paper's mpich implementation: slaves
// call the master for work, piggy-backing the results of the previous
// chunk on each request (§5's communication optimisation), and the
// master replies with an iteration interval or a stop flag.
//
// On top of the paper's protocol the runtime supports a pipelined,
// double-buffered mode (Worker.Pipeline): the slave requests chunk
// k+1 while still computing chunk k, so the master round-trip and the
// result transfer overlap with the kernel instead of serialising with
// it. The master then tracks up to two outstanding assignments per
// worker. See docs/PROTOCOL.md for the handshake.

// maxOutstanding is the depth of the per-worker assignment ledger:
// the chunk being computed plus one prefetched chunk.
const maxOutstanding = 2

// ChunkResult carries the output of one computed iteration back to
// the master.
type ChunkResult struct {
	Index int
	Data  []byte
}

// ChunkArgs is a slave's work request.
type ChunkArgs struct {
	Worker int
	// ACP is the slave's available computing power (0 for simple
	// schemes / unknown).
	ACP int
	// CompSeconds is the measured computation time of the previous
	// chunk (0 on the first request) — the master derives the paper's
	// per-PE T_comp/T_comm breakdown from it.
	CompSeconds float64
	// IdleSeconds is how long the worker's compute loop sat stalled
	// waiting for the previous request to be answered. Serial workers
	// leave it 0 (their whole round-trip is communication); pipelined
	// workers report the prefetch-miss residue so the master can tell
	// hidden communication from a genuine stall.
	IdleSeconds float64
	// Results are the outputs of the previously assigned chunk.
	Results []ChunkResult
	// Prefetch marks a double-buffered request: the worker is still
	// computing its current chunk and wants the next one in advance.
	// The master answers immediately — with a second assignment, or
	// with an empty reply (Assign.Size == 0, Stop false) when nothing
	// can be issued right now — and must not treat the worker's
	// in-flight chunk as abandoned.
	Prefetch bool
}

// ChunkReply is the master's answer. An empty reply (zero Assign, Stop
// false) to a Prefetch request means "nothing to prefetch right now":
// the worker should finish its current chunk and ask again without the
// flag.
type ChunkReply struct {
	Assign sched.Assignment
	Stop   bool
}

// Master is the RPC scheduling service. Create with NewMaster, expose
// with Serve, then Wait for completion.
type Master struct {
	scheme     sched.Scheme
	iterations int
	workers    int
	disableRe  bool
	serveWG    sync.WaitGroup
	bus        *telemetry.Bus // nil unless SetTelemetry was called

	mu          sync.Mutex
	conns       []net.Conn // accepted by Serve, closed by Shutdown
	gathered    int
	seen        []bool
	joined      []bool // workers that made first contact (telemetry)
	ready       *sync.Cond
	policy      sched.Policy
	liveACP     []int
	planACP     []int
	base        int
	stoppedSet  []bool
	results     [][]byte
	got         []bool
	received    int
	chunks      int
	replans     int
	outstanding map[int][]sched.Assignment // chunks in flight per worker (≤ maxOutstanding)
	requeued    []sched.Assignment         // failed workers' chunks to re-issue
	failed      map[int]bool
	parked      []bool // workers idling inside a held NextChunk call
	lastSeen    []time.Time
	lastReply   []time.Time
	perWorker   []metrics.Times
	started     time.Time
	finished    time.Time
	done        chan struct{}
	err         error
	cancelErr   error
}

// NewMaster builds a master scheduling `iterations` loop iterations
// across `workers` slaves under the scheme.
func NewMaster(scheme sched.Scheme, iterations, workers int) (*Master, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("exec: master needs at least one worker")
	}
	if iterations < 0 {
		return nil, fmt.Errorf("exec: negative iteration count")
	}
	m := &Master{
		scheme:      scheme,
		iterations:  iterations,
		workers:     workers,
		seen:        make([]bool, workers),
		joined:      make([]bool, workers),
		liveACP:     make([]int, workers),
		planACP:     make([]int, workers),
		results:     make([][]byte, iterations),
		got:         make([]bool, iterations),
		outstanding: make(map[int][]sched.Assignment),
		failed:      make(map[int]bool),
		parked:      make([]bool, workers),
		lastSeen:    make([]time.Time, workers),
		lastReply:   make([]time.Time, workers),
		perWorker:   make([]metrics.Times, workers),
		stoppedSet:  make([]bool, workers),
		done:        make(chan struct{}),
		started:     time.Now(),
	}
	for i := range m.lastSeen {
		m.lastSeen[i] = m.started
	}
	m.ready = sync.NewCond(&m.mu)
	if !sched.Distributed(scheme) {
		pol, err := scheme.NewPolicy(sched.Config{Iterations: iterations, Workers: workers})
		if err != nil {
			return nil, err
		}
		m.policy = pol
	}
	if iterations == 0 {
		m.maybeFinish()
	}
	return m, nil
}

// SetTelemetry attaches an event bus: the master publishes protocol
// events (requests, grants, prefetch hits/misses, worker joins,
// timeouts, rejected resurrections, replans) to it. Call before Serve.
// A nil bus is valid and disables publishing.
func (m *Master) SetTelemetry(bus *telemetry.Bus) {
	m.mu.Lock()
	m.bus = bus
	m.mu.Unlock()
}

// Serve registers the master on a fresh RPC server and accepts
// connections until the listener closes. It returns immediately;
// close the listener after Wait to shut down.
func (m *Master) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", m); err != nil {
		return err
	}
	m.serveWG.Add(1)
	go func() {
		defer m.serveWG.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			m.mu.Lock()
			m.conns = append(m.conns, conn)
			m.mu.Unlock()
			m.serveWG.Add(1)
			go func() {
				defer m.serveWG.Done()
				srv.ServeConn(conn)
			}()
		}
	}()
	return nil
}

// Shutdown closes the listener and every connection accepted by Serve,
// then joins the serving goroutines. Call it after Wait: slaves have
// already been told to stop, so tearing down their connections only
// unblocks any straggling RPC server loops.
func (m *Master) Shutdown(l net.Listener) {
	if l != nil {
		l.Close()
	}
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	m.serveWG.Wait()
}

// plan (re)builds the policy from the live ACPs; callers hold mu.
func (m *Master) plan() error {
	powers := make([]float64, m.workers)
	for i, a := range m.liveACP {
		if a < 1 {
			a = 1
		}
		powers[i] = float64(a)
	}
	pol, err := m.scheme.NewPolicy(sched.Config{
		Iterations: m.iterations - m.base,
		Workers:    m.workers,
		Powers:     powers,
	})
	if err != nil {
		return err
	}
	m.policy = sched.Offset(pol, m.base)
	copy(m.planACP, m.liveACP)
	return nil
}

// NextChunk is the RPC the slaves call: deposit previous results, get
// the next interval (or, with Prefetch, the one after it).
func (m *Master) NextChunk(args ChunkArgs, reply *ChunkReply) (err error) {
	if args.Worker < 0 || args.Worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", args.Worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	reqAt := m.bus.Now() // request arrival on the telemetry clock
	// Stamp the reply time only when a reply is actually produced: an
	// errored call never reaches the worker's loop, so stamping it
	// would corrupt the next request's communication gap.
	defer func() {
		if err == nil {
			m.lastReply[args.Worker] = time.Now()
		}
	}()

	// Deposit piggy-backed results first — they are valid data even
	// when the sender has since been declared dead.
	for _, r := range args.Results {
		if r.Index < 0 || r.Index >= m.iterations {
			return fmt.Errorf("exec: result index %d out of range", r.Index)
		}
		if !m.got[r.Index] {
			m.got[r.Index] = true
			m.received++
		}
		m.results[r.Index] = r.Data
	}
	m.retireDelivered(args.Worker, !args.Prefetch)
	m.checkDone()

	// Resurrected-worker race: a worker declared dead that calls again
	// was merely slow. Its chunks were requeued, so handing it more
	// work would compute iterations twice; send it home, and keep it
	// out of both the stopped and failed completion counters (it is
	// already in failed).
	if m.failed[args.Worker] {
		m.bus.Publish(telemetry.Event{
			Kind: telemetry.WorkerRejected, Worker: args.Worker, At: reqAt,
		})
		reply.Stop = true
		return nil
	}
	if !m.joined[args.Worker] {
		m.joined[args.Worker] = true
		m.bus.Publish(telemetry.Event{
			Kind: telemetry.WorkerJoined, Worker: args.Worker,
			ACP: args.ACP, At: reqAt,
		})
	}
	m.bus.Publish(telemetry.Event{
		Kind: telemetry.ChunkRequested, Worker: args.Worker,
		ACP: args.ACP, At: reqAt,
	})

	m.lastSeen[args.Worker] = now
	// Per-PE breakdown: the worker reports computation and stall time;
	// the rest of the reply-to-request turnaround is communication
	// (request/result transfer) from the master's point of view. The
	// gap is charged even for near-zero-duration chunks — only the
	// very first request (no previous reply) has no gap to measure.
	if args.CompSeconds > 0 {
		m.perWorker[args.Worker].Comp += args.CompSeconds
	}
	if args.IdleSeconds > 0 {
		m.perWorker[args.Worker].Idle += args.IdleSeconds
	}
	if prev := m.lastReply[args.Worker]; !prev.IsZero() {
		if gap := now.Sub(prev).Seconds() - args.CompSeconds - args.IdleSeconds; gap > 0 {
			m.perWorker[args.Worker].Comm += gap
		}
	}

	m.liveACP[args.Worker] = args.ACP

	if m.policy == nil { // distributed: gather all first reports
		if !m.seen[args.Worker] {
			m.seen[args.Worker] = true
			m.gathered++
		}
		if m.gathered < m.workers {
			// A cancelled run closes done without ever completing the
			// gather; the barrier must observe that or waiters hang.
			for m.policy == nil && m.err == nil && m.gathered < m.workers && !m.doneClosed() {
				m.ready.Wait()
			}
		}
		if m.policy == nil && m.err == nil && !m.doneClosed() {
			m.err = m.plan()
			m.ready.Broadcast()
		}
		if m.err != nil {
			m.ready.Broadcast()
			return m.err
		}
		if m.policy == nil { // cancelled mid-gather: assign sends Stop
			return m.assign(args, reply, reqAt)
		}
	} else if sched.Distributed(m.scheme) && !m.disableRe &&
		acp.MajorityChanged(m.planACP, m.liveACP) {
		if err := m.plan(); err == nil {
			m.replans++
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.StageAdvanced, Worker: args.Worker,
				At: m.bus.Now(),
			})
		}
	}

	return m.assign(args, reply, reqAt)
}

// assign hands the worker its next interval: requeued chunks before
// fresh policy assignments. When the policy is drained, a prefetch
// request gets an immediate empty reply, while a plain request parks
// inside the call until the run completes or a failure requeues work —
// so a late FailWorker always finds a live worker to absorb the chunk
// (the lost-iterations fix). Callers hold mu.
func (m *Master) assign(args ChunkArgs, reply *ChunkReply, reqAt float64) error {
	w := args.Worker
	for {
		select {
		case <-m.done:
			if !m.stoppedSet[w] {
				m.stoppedSet[w] = true
			}
			reply.Stop = true
			return nil
		default:
		}
		if m.err != nil {
			return m.err
		}
		if m.failed[w] { // failed while parked
			reply.Stop = true
			return nil
		}
		if len(m.outstanding[w]) >= maxOutstanding {
			// Ledger full — only reachable on a prefetch from a worker
			// that has not delivered yet. Empty reply: ask again later.
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.PrefetchMissed, Worker: w, At: m.bus.Now(),
			})
			return nil
		}
		if a, ok := m.takeRequeued(); ok {
			m.grant(w, a, reply, args.Prefetch, reqAt)
			return nil
		}
		if a, ok := m.policy.Next(sched.Request{Worker: w, ACP: float64(args.ACP)}); ok {
			m.base = a.End()
			m.grant(w, a, reply, args.Prefetch, reqAt)
			return nil
		}
		if args.Prefetch {
			// Nothing to prefetch right now; the worker still has its
			// current chunk to finish and deliver.
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.PrefetchMissed, Worker: w, At: m.bus.Now(),
			})
			return nil
		}
		// The worker is idle with nothing in flight. Hold the call:
		// either the run completes (Stop) or a failed worker's chunk
		// is requeued and lands here.
		m.parked[w] = true
		m.ready.Wait()
		m.parked[w] = false
		m.lastSeen[w] = time.Now() // parked, not silent
	}
}

// grant records an assignment in the outstanding ledger and fills the
// reply, publishing the grant (with its request-to-grant latency) to
// the telemetry bus; callers hold mu.
func (m *Master) grant(w int, a sched.Assignment, reply *ChunkReply, prefetch bool, reqAt float64) {
	m.outstanding[w] = append(m.outstanding[w], a)
	m.chunks++
	reply.Assign = a
	if m.bus != nil {
		kind := telemetry.ChunkGranted
		if prefetch {
			kind = telemetry.ChunkPrefetched
		}
		now := m.bus.Now()
		m.bus.Publish(telemetry.Event{
			Kind: kind, Worker: w, Start: a.Start, Size: a.Size,
			ACP: m.liveACP[w], At: now, Seconds: now - reqAt,
		})
	}
}

// takeRequeued pops the next requeued chunk that still has undelivered
// iterations (a failed worker may have delivered its chunk after the
// requeue); callers hold mu.
func (m *Master) takeRequeued() (sched.Assignment, bool) {
	for len(m.requeued) > 0 {
		a := m.requeued[0]
		m.requeued = m.requeued[1:]
		if !m.delivered(a) {
			return a, true
		}
	}
	return sched.Assignment{}, false
}

// delivered reports whether every iteration of the assignment has been
// received; callers hold mu.
func (m *Master) delivered(a sched.Assignment) bool {
	for i := a.Start; i < a.End(); i++ {
		if !m.got[i] {
			return false
		}
	}
	return true
}

// retireDelivered drops outstanding assignments the worker has fully
// delivered. A non-prefetch request additionally declares the worker
// has nothing left in flight: any still-undelivered chunk was
// abandoned (e.g. the worker process restarted) and is requeued rather
// than lost. Callers hold mu.
func (m *Master) retireDelivered(w int, clearAll bool) {
	out := m.outstanding[w]
	if len(out) == 0 {
		return
	}
	kept := out[:0]
	for _, a := range out {
		if !m.delivered(a) {
			kept = append(kept, a)
		}
	}
	if clearAll && len(kept) > 0 {
		m.requeued = append(m.requeued, kept...)
		m.ready.Broadcast() // a parked worker can pick these up
		kept = kept[:0]
	}
	if len(kept) == 0 {
		delete(m.outstanding, w)
	} else {
		m.outstanding[w] = kept
	}
}

// failedCount is the number of workers declared dead; callers hold mu.
func (m *Master) failedCount() int { return len(m.failed) }

// checkDone finishes the run when every result is in, or when no
// worker is left to produce the missing ones; callers hold mu.
func (m *Master) checkDone() {
	if m.received >= m.iterations || m.failedCount() >= m.workers {
		m.maybeFinish()
	}
}

// doneClosed reports whether the run has finished (or been cancelled);
// callers hold mu.
func (m *Master) doneClosed() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// maybeFinish closes done once and wakes parked workers so they can be
// stopped; callers hold mu.
func (m *Master) maybeFinish() {
	select {
	case <-m.done:
	default:
		m.finished = time.Now()
		close(m.done)
		if m.ready != nil {
			m.ready.Broadcast()
		}
	}
}

// FailWorker declares a worker dead: its in-flight chunks (up to two
// in pipelined mode) are requeued for the surviving workers, and it no
// longer counts toward run completion. Call it when a slave's
// connection drops or a heartbeat times out; the loop still completes
// as long as at least one worker survives.
func (m *Master) FailWorker(worker int) error {
	if worker < 0 || worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed[worker] || m.stoppedSet[worker] {
		return nil // already accounted for
	}
	m.failed[worker] = true
	m.bus.Publish(telemetry.Event{
		Kind: telemetry.WorkerTimedOut, Worker: worker, At: m.bus.Now(),
	})
	if out := m.outstanding[worker]; len(out) > 0 {
		delete(m.outstanding, worker)
		m.requeued = append(m.requeued, out...)
	}
	// A worker that dies during the distributed gather must not stall
	// the barrier.
	if m.policy == nil && !m.seen[worker] {
		m.seen[worker] = true
		m.gathered++
		if m.gathered >= m.workers {
			m.err = m.plan()
		}
	}
	m.checkDone()
	m.ready.Broadcast() // wake parked workers: requeued work or all-failed finish
	return nil
}

// LastContact returns when the worker last called NextChunk (the
// master's start time if it never has).
func (m *Master) LastContact(worker int) (time.Time, error) {
	if worker < 0 || worker >= m.workers {
		return time.Time{}, fmt.Errorf("exec: unknown worker %d", worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeen[worker], nil
}

// WatchTimeouts fails any worker silent for longer than `timeout`,
// checking every `interval`, until the run completes or stop is
// closed. It runs in the calling goroutine; start it with `go`. This
// turns FailWorker's manual requeue into automatic crash recovery.
// Workers parked inside a held NextChunk call are alive by definition
// and are never timed out.
func (m *Master) WatchTimeouts(interval, timeout time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			now := time.Now()
			m.mu.Lock()
			var stale []int
			for w := 0; w < m.workers; w++ {
				if !m.failed[w] && !m.parked[w] && now.Sub(m.lastSeen[w]) > timeout {
					stale = append(stale, w)
				}
			}
			m.mu.Unlock()
			for _, w := range stale {
				// FailWorker re-checks state under the lock.
				_ = m.FailWorker(w)
			}
		}
	}
}

// Outstanding returns the chunks currently in flight, keyed by worker.
// Pipelined workers can hold up to two entries: the chunk being
// computed and the prefetched one.
func (m *Master) Outstanding() map[int][]sched.Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int][]sched.Assignment, len(m.outstanding))
	for w, as := range m.outstanding {
		out[w] = append([]sched.Assignment(nil), as...)
	}
	return out
}

// Parked returns how many workers are currently idling inside a held
// NextChunk call, waiting for requeued work or the end of the run.
func (m *Master) Parked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.parked {
		if p {
			n++
		}
	}
	return n
}

// DisableReplan turns off the mid-run majority re-plan for distributed
// schemes. The hierarchical root scheme requires it: steals grant
// ranges out of monotone order, which the re-plan's base-offset
// bookkeeping would corrupt. Call before serving.
func (m *Master) DisableReplan() {
	m.mu.Lock()
	m.disableRe = true
	m.mu.Unlock()
}

// Cancel aborts the run: parked workers are released with Stop
// replies, in-progress workers are stopped on their next request, and
// Wait returns cause. A nil cause means context.Canceled. Cancelling
// an already-finished run is a no-op.
func (m *Master) Cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case <-m.done: // finished first; keep that outcome
		return
	default:
	}
	m.cancelErr = cause
	m.maybeFinish()
	m.ready.Broadcast()
}

// WaitContext is Wait with cancellation: when ctx ends first the run
// is cancelled (releasing any workers parked in NextChunk) and ctx's
// error is returned.
func (m *Master) WaitContext(ctx context.Context) ([][]byte, metrics.Report, error) {
	select {
	case <-m.done:
	case <-ctx.Done():
		m.Cancel(ctx.Err())
	}
	return m.Wait()
}

// Wait blocks until the run completes — every iteration delivered, or
// no live worker left to produce the missing ones — and returns the
// collected per-iteration results plus a report. Missing results
// surface as a non-nil error.
func (m *Master) Wait() ([][]byte, metrics.Report, error) {
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := metrics.Report{
		Scheme:     m.scheme.Name(),
		Workers:    m.workers,
		Iterations: m.iterations,
		Chunks:     m.chunks,
		Replans:    m.replans,
		Tp:         m.finished.Sub(m.started).Seconds(),
		PerWorker:  append([]metrics.Times(nil), m.perWorker...),
	}
	// What is neither computing, communicating nor stalled is waiting.
	for i := range rep.PerWorker {
		if wait := rep.Tp - rep.PerWorker[i].Total(); wait > 0 {
			rep.PerWorker[i].Wait = wait
		}
	}
	var err error
	if m.received != m.iterations {
		err = fmt.Errorf("exec: %d of %d results missing", m.iterations-m.received, m.iterations)
	}
	if m.cancelErr != nil {
		err = m.cancelErr
	}
	return m.results, rep, err
}

// Kernel computes one iteration and returns its serialized result.
type Kernel func(iteration int) []byte

// Worker is an RPC slave: it loops requesting chunks from the master,
// computing them with the kernel, and piggy-backing results.
type Worker struct {
	ID int
	// Kernel computes one iteration.
	Kernel Kernel
	// VirtualPower is the slave's V_i (≥ 1; 0 means 1).
	VirtualPower float64
	// LoadProbe returns the current external load (Q_i − 1); nil
	// means unloaded. In pipelined mode it is called from the
	// communication goroutine, concurrently with the kernel.
	LoadProbe func() int
	// ACPModel converts power and load into the reported ACP.
	ACPModel acp.Model
	// WorkScale repeats the kernel per iteration to emulate a slower
	// machine (1 = full speed).
	WorkScale int
	// Pipeline enables the double-buffered protocol: the next chunk is
	// prefetched and the previous results uploaded while the kernel
	// runs, hiding the master round-trip whenever it is shorter than
	// the chunk's computation.
	Pipeline bool
	// Telemetry, when non-nil, receives a ChunkCompleted event for
	// every chunk this worker computes. TelemetryID and TelemetryShard
	// label those events; TelemetryID must be the run-global worker id
	// (the hierarchical runtime hands workers shard-local IDs).
	Telemetry      *telemetry.Bus
	TelemetryID    int
	TelemetryShard int
}

// publishCompleted reports one computed chunk to the telemetry bus
// (no-op when none is attached). reportedACP is the ACP carried on the
// request that fetched the chunk.
func (w Worker) publishCompleted(a sched.Assignment, reportedACP int, comp float64) {
	w.Telemetry.Publish(telemetry.Event{
		Kind:   telemetry.ChunkCompleted,
		Worker: w.TelemetryID, Shard: w.TelemetryShard,
		Start: a.Start, Size: a.Size, ACP: reportedACP,
		At: w.Telemetry.Now(), Seconds: comp,
	})
}

func (w Worker) power() float64 {
	if w.VirtualPower <= 0 {
		return 1
	}
	return w.VirtualPower
}

func (w Worker) scale() int {
	if w.WorkScale < 1 {
		return 1
	}
	return w.WorkScale
}

// args builds one request from the worker's current state.
func (w Worker) args(prefetch bool, results []ChunkResult, comp, idle float64) ChunkArgs {
	load := 0
	if w.LoadProbe != nil {
		load = w.LoadProbe()
	}
	return ChunkArgs{
		Worker:      w.ID,
		ACP:         w.ACPModel.ACP(w.power(), 1+load),
		CompSeconds: comp,
		IdleSeconds: idle,
		Results:     results,
		Prefetch:    prefetch,
	}
}

// compute runs the kernel over one assignment.
func (w Worker) compute(a sched.Assignment) []ChunkResult {
	results := make([]ChunkResult, 0, a.Size)
	for i := a.Start; i < a.End(); i++ {
		var data []byte
		for rep := 0; rep < w.scale(); rep++ {
			data = w.Kernel(i)
		}
		results = append(results, ChunkResult{Index: i, Data: data})
	}
	return results
}

// Run connects to the master at addr and participates until stopped.
func (w Worker) Run(addr string) error {
	return w.RunContext(context.Background(), addr)
}

// RunContext is Run with cancellation: the dial honours ctx, and a
// cancellation mid-run closes the RPC client, which unblocks any
// in-flight NextChunk call; the method then returns ctx's error.
func (w Worker) RunContext(ctx context.Context, addr string) error {
	if w.Kernel == nil {
		return errors.New("exec: worker needs a kernel")
	}
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	client := rpc.NewClient(conn)
	defer client.Close()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			client.Close()
		case <-watchDone:
		}
	}()
	if w.Pipeline {
		err = w.runPipelined(client)
	} else {
		err = w.runSerial(client)
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// runSerial is the paper's §3.1 slave loop: request, compute, piggy-
// back, repeat. Communication is strictly serialised with computation.
func (w Worker) runSerial(client *rpc.Client) error {
	var results []ChunkResult
	var compSeconds float64
	for {
		req := w.args(false, results, compSeconds, 0)
		var reply ChunkReply
		if err := client.Call("Master.NextChunk", req, &reply); err != nil {
			return err
		}
		if reply.Stop {
			return nil
		}
		start := time.Now()
		results = w.compute(reply.Assign)
		compSeconds = time.Since(start).Seconds()
		w.publishCompleted(reply.Assign, req.ACP, compSeconds)
	}
}

// runPipelined overlaps communication with computation: while the
// kernel runs on chunk k, the request for chunk k+1 — carrying chunk
// k−1's results — is already in flight on a second goroutine, so the
// master round-trip is hidden whenever it is shorter than the kernel.
func (w Worker) runPipelined(client *rpc.Client) error {
	// The first chunk is fetched synchronously (for distributed
	// schemes this request also joins the gather barrier).
	var reply ChunkReply
	if err := client.Call("Master.NextChunk", w.args(false, nil, 0, 0), &reply); err != nil {
		return err
	}
	var pending []ChunkResult // computed results not yet shipped
	var comp, idle float64    // their timing, not yet shipped
	for {
		switch {
		case reply.Stop:
			if len(pending) == 0 {
				return nil
			}
			// Ship the final chunk's results; the master answers Stop
			// again (or, if it somehow has work, the loop runs it).
			if err := client.Call("Master.NextChunk", w.args(false, pending, comp, idle), &reply); err != nil {
				return err
			}
			pending, comp, idle = nil, 0, 0

		case reply.Assign.Size == 0:
			// Empty prefetch reply: the master had nothing to issue.
			// Deliver what we hold and ask again without the flag —
			// the call parks at the master until the run completes or
			// a failed worker's chunk needs a new home.
			if err := client.Call("Master.NextChunk", w.args(false, pending, comp, idle), &reply); err != nil {
				return err
			}
			pending, comp, idle = nil, 0, 0

		default:
			// Launch the prefetch for the next chunk (carrying the
			// previous chunk's results), then compute this one.
			req := w.args(true, pending, comp, idle)
			fetch := client.Go("Master.NextChunk", req, &ChunkReply{}, nil)
			start := time.Now()
			results := w.compute(reply.Assign)
			comp = time.Since(start).Seconds()
			w.publishCompleted(reply.Assign, req.ACP, comp)

			waitStart := time.Now()
			<-fetch.Done
			idle = time.Since(waitStart).Seconds() // prefetch-miss stall
			if fetch.Error != nil {
				return fetch.Error
			}
			reply = *fetch.Reply.(*ChunkReply)
			pending = results
		}
	}
}
