package exec

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/ledger"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/telemetry/hist"
	"loopsched/internal/wire"
)

// The RPC runtime mirrors the paper's mpich implementation: slaves
// call the master for work, piggy-backing the results of the previous
// chunk on each request (§5's communication optimisation), and the
// master replies with an iteration interval or a stop flag.
//
// On top of the paper's protocol the runtime supports a pipelined,
// double-buffered mode (Worker.Pipeline): the slave requests chunk
// k+1 while still computing chunk k, so the master round-trip and the
// result transfer overlap with the kernel instead of serialising with
// it. The per-worker assignment ledger holds up to window+1 chunks —
// the one being computed plus the credit window of prefetched ones
// (SetWindow; the default window of 1 is the classic double buffer).
//
// Two transports speak this protocol (see transport.go): the original
// net/rpc + gob encoding, one chunk per round trip, and the binary
// framing codec of internal/wire, which batches N completion records
// and up to `credits` grants into single frames. Serve sniffs the
// first byte of each connection, so one listener carries both.
//
// The master's hot path is de-contended: results deposit into a
// lock-free ledger (one atomic flip per iteration index), per-worker
// protocol state lives in per-worker slots with their own locks, and
// for fixed-chunk schemes (sched.FixedChunker: SS, CSS) grants come
// from an atomic iteration counter, so steady-state requests from
// different workers never share a lock. Stateful stage-based schemes
// (GSS, TSS, factoring, ...) and every recovery path (failures,
// requeues, parking, cancellation) fall back to the original locked
// scheduler under Master.mu. See docs/PROTOCOL.md for the handshake.

// ChunkResult carries the output of one computed iteration back to
// the master.
type ChunkResult struct {
	Index int
	Data  []byte
	// Span echoes the trace span id of the chunk that produced this
	// result (zero means untraced); see telemetry.SpanID. The binary
	// transport carries it in the request's span block so a chunk's
	// flow stays connected across processes.
	Span uint64
}

// ChunkArgs is a slave's work request.
type ChunkArgs struct {
	Worker int
	// ACP is the slave's available computing power (0 for simple
	// schemes / unknown).
	ACP int
	// CompSeconds is the measured computation time of the previous
	// chunk (0 on the first request) — the master derives the paper's
	// per-PE T_comp/T_comm breakdown from it.
	CompSeconds float64
	// IdleSeconds is how long the worker's compute loop sat stalled
	// waiting for the previous request to be answered. Serial workers
	// leave it 0 (their whole round-trip is communication); pipelined
	// workers report the prefetch-miss residue so the master can tell
	// hidden communication from a genuine stall.
	IdleSeconds float64
	// Results are the outputs of the previously assigned chunk.
	Results []ChunkResult
	// Prefetch marks a double-buffered request: the worker is still
	// computing its current chunk and wants the next one in advance.
	// The master answers immediately — with more assignments, or
	// with an empty reply (no grant, Stop false) when nothing can be
	// issued right now — and must not treat the worker's in-flight
	// chunk as abandoned.
	Prefetch bool
	// DepositOnly marks a ledger worker's completion report: file the
	// results and the timing, grant nothing. The wire transport maps
	// the request frame's no-reply flag here; the worker computes its
	// own next chunk from the fetch-and-add ledger instead.
	DepositOnly bool
}

// ChunkReply is the master's answer on the net/rpc transport. An
// empty reply (zero Assign, Stop false) to a Prefetch request means
// "nothing to prefetch right now": the worker should finish its
// current chunk and ask again without the flag.
type ChunkReply struct {
	Assign sched.Assignment
	Stop   bool
}

// slot is the per-worker protocol state. Each slot has its own lock,
// so steady-state requests from different workers touch no shared
// mutex; Master.mu is only ever acquired before a slot lock, never
// after releasing one inside the same critical section.
type slot struct {
	mu          sync.Mutex
	outstanding []sched.Assignment // chunks in flight (≤ ledger cap)
	times       metrics.Times
	lastSeen    time.Time
	lastReply   time.Time
	joined      bool
	failed      bool // mirror of Master.failed, for the lock-free path
}

// Master is the RPC scheduling service. Create with NewMaster, expose
// with Serve, then Wait for completion.
type Master struct {
	scheme     sched.Scheme
	iterations int
	workers    int
	window     int // credit window; per-worker ledger cap is window+1
	disableRe  bool
	serveWG    sync.WaitGroup
	bus        *telemetry.Bus // nil unless SetTelemetry was called

	// Lock-free result ledger: got[i] flips exactly once (CAS); the
	// winner stores results[i] and then bumps received, so the
	// goroutine that observes received == iterations also observes
	// every stored result.
	got      []atomic.Bool
	received atomic.Int64
	results  [][]byte
	chunks   atomic.Int64

	// De-contended grant counter for fixed-chunk schemes. fastStep is
	// the constant chunk size (0 disables the fast path); fastNext is
	// the first unassigned iteration; fastOff forces every request
	// through the locked scheduler once failures or requeues exist.
	fastStep int
	fastNext atomic.Int64
	fastOff  atomic.Bool

	// Decentralized scheduling ledger (SetLedger): when ledgerTab is
	// non-nil, the step counter + table pair is the single source of
	// every fresh grant — wire workers claim steps directly with
	// FetchAdd frames, and the master-path grants (gob workers, mixed
	// fleets, the requeue tail) draw from the same counter, so no
	// range is ever issued twice across the two protocols.
	ledgerTab *ledger.Table
	ledgerCtr ledger.Local

	// Latency histograms for the report: request-to-grant on the
	// master's clock (recorded only when a bus supplies that clock)
	// and worker-reported per-chunk compute time.
	waitHist *hist.Sharded
	compHist *hist.Sharded

	slots []slot

	mu         sync.Mutex
	conns      []net.Conn // accepted by Serve, closed by Shutdown
	gathered   int
	seen       []bool
	ready      *sync.Cond
	policy     sched.Policy
	liveACP    []int
	planACP    []int
	base       int
	stoppedSet []bool
	replans    int
	requeued   []sched.Assignment // failed workers' chunks to re-issue
	failed     map[int]bool
	parked     []bool // workers idling inside a held NextChunk call
	started    time.Time
	finished   time.Time
	done       chan struct{}
	err        error
	cancelErr  error
}

// NewMaster builds a master scheduling `iterations` loop iterations
// across `workers` slaves under the scheme.
func NewMaster(scheme sched.Scheme, iterations, workers int) (*Master, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("exec: master needs at least one worker")
	}
	if iterations < 0 {
		return nil, fmt.Errorf("exec: negative iteration count")
	}
	m := &Master{
		scheme:     scheme,
		iterations: iterations,
		workers:    workers,
		window:     1,
		seen:       make([]bool, workers),
		liveACP:    make([]int, workers),
		planACP:    make([]int, workers),
		results:    make([][]byte, iterations),
		got:        make([]atomic.Bool, iterations),
		slots:      make([]slot, workers),
		waitHist:   hist.NewSharded(workers),
		compHist:   hist.NewSharded(workers),
		failed:     make(map[int]bool),
		parked:     make([]bool, workers),
		stoppedSet: make([]bool, workers),
		done:       make(chan struct{}),
		started:    time.Now(),
	}
	for i := range m.slots {
		m.slots[i].lastSeen = m.started
	}
	m.ready = sync.NewCond(&m.mu)
	cfg := sched.Config{Iterations: iterations, Workers: workers}
	if !sched.Distributed(scheme) {
		pol, err := scheme.NewPolicy(cfg)
		if err != nil {
			return nil, err
		}
		m.policy = pol
		if step, ok := sched.FixedChunk(scheme, cfg); ok && step > 0 {
			m.fastStep = step
		}
	}
	if iterations == 0 {
		m.maybeFinish()
	}
	return m, nil
}

// SetTelemetry attaches an event bus: the master publishes protocol
// events (requests, grants, prefetch hits/misses, worker joins,
// timeouts, rejected resurrections, replans) and wire-level frame
// counters to it. Call before Serve. A nil bus is valid and disables
// publishing.
func (m *Master) SetTelemetry(bus *telemetry.Bus) {
	m.mu.Lock()
	m.bus = bus
	m.mu.Unlock()
}

// SetWindow sets the credit window: how many chunks a worker may hold
// beyond the one it is computing, i.e. the per-worker ledger caps at
// window+1 assignments. The default of 1 reproduces the classic
// double-buffered protocol. Binary-transport workers ask for up to
// their own window's worth of grants per frame; the master clamps to
// the ledger room regardless of what a request asks. Call before
// Serve.
func (m *Master) SetWindow(w int) {
	if w >= 1 {
		m.window = w
	}
}

// ledgerCap is the per-worker in-flight chunk bound.
func (m *Master) ledgerCap() int { return m.window + 1 }

// SetLedger requests the decentralized scheduling ledger. With
// LedgerOn (or "" resolving to it via LOOPSCHED_LEDGER) and a
// step-deterministic scheme, the master precomputes the run's chunk
// table and serves one-sided FetchAdd claims; ineligible schemes
// silently keep the master path, so callers may pass "on"
// unconditionally. Call before Serve. Ledger mode trades failure
// recovery for speed: steps a wire worker claimed for itself are not
// tracked in any per-worker ledger, so FailWorker cannot requeue them
// (see docs/LEDGER.md).
func (m *Master) SetLedger(mode LedgerMode) error {
	mode, ok := mode.Normalize()
	if !ok {
		return fmt.Errorf("exec: unknown ledger mode %q", mode)
	}
	if mode != LedgerOn {
		m.ledgerTab = nil
		return nil
	}
	tab, err := ledger.Build(m.scheme, sched.Config{Iterations: m.iterations, Workers: m.workers})
	if err != nil {
		if errors.Is(err, ledger.ErrIneligible) {
			return nil // master path; the request is advisory
		}
		return err
	}
	m.ledgerTab = tab
	return nil
}

// LedgerActive reports whether grants come from the fetch-and-add
// ledger (SetLedger accepted the scheme).
func (m *Master) LedgerActive() bool { return m.ledgerTab != nil }

// Ledger returns the armed ledger table (nil when inactive) — hand it
// to Worker.LedgerTable so binary-transport workers claim one-sided.
func (m *Master) Ledger() *ledger.Table { return m.ledgerTab }

// ledgerFetchAdd services one wire-level claim: bump the shared step
// counter by n and account every valid claimed step as a granted
// chunk — the self-computing worker will derive the same boundaries
// from its table replica. Steps past the table are wasted claims and
// count nothing. A one-sided claim has no request-to-grant wait, so
// the grant-latency histogram records the claim's service time — near
// zero by design, which is the ledger's whole point — keeping the
// histogram count reconciled with the chunk tally.
func (m *Master) ledgerFetchAdd(worker, n int) uint64 {
	var claimAt float64
	if m.bus != nil {
		claimAt = m.bus.Now()
	}
	first, _ := m.ledgerCtr.FetchAdd(n)
	end := first + uint64(n)
	if steps := uint64(m.ledgerTab.Steps()); end > steps {
		end = steps
	}
	for s := first; s < end; s++ {
		a, ok := m.ledgerTab.Chunk(s)
		if !ok {
			break
		}
		m.chunks.Add(1)
		if m.bus != nil {
			now := m.bus.Now()
			m.waitHist.Record(worker, now-claimAt)
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.ChunkGranted, Worker: worker,
				Start: a.Start, Size: a.Size, Span: telemetry.SpanID(0, a.Start),
				At: now, Seconds: now - claimAt,
			})
		}
	}
	return first
}

// fetchAddFunc returns the wire ledger hook, or nil when the master
// hosts no ledger (FetchAdd frames then drop the connection).
func (m *Master) fetchAddFunc() FetchAddFunc {
	if m.ledgerTab == nil {
		return nil
	}
	return m.ledgerFetchAdd
}

// Serve accepts connections until the listener closes, sniffing each
// connection's first byte to route it: the binary wire preamble to
// the framed chunk service, anything else to a net/rpc server
// speaking the original gob protocol. It returns immediately; close
// the listener after Wait to shut down.
func (m *Master) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", m); err != nil {
		return err
	}
	m.serveWG.Add(1)
	go func() {
		defer m.serveWG.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			m.mu.Lock()
			m.conns = append(m.conns, conn)
			m.mu.Unlock()
			m.serveWG.Add(1)
			go func() {
				defer m.serveWG.Done()
				ServeSniffed(srv, conn, m.bus, 0, m.nextBatch, m.fetchAddFunc())
			}()
		}
	}()
	return nil
}

// Shutdown closes the listener and every connection accepted by Serve,
// then joins the serving goroutines. Call it after Wait: slaves have
// already been told to stop, so tearing down their connections only
// unblocks any straggling server loops.
func (m *Master) Shutdown(l net.Listener) {
	if l != nil {
		l.Close()
	}
	m.mu.Lock()
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	m.serveWG.Wait()
}

// plan (re)builds the policy from the live ACPs; callers hold mu.
func (m *Master) plan() error {
	powers := make([]float64, m.workers)
	for i, a := range m.liveACP {
		if a < 1 {
			a = 1
		}
		powers[i] = float64(a)
	}
	pol, err := m.scheme.NewPolicy(sched.Config{
		Iterations: m.iterations - m.base,
		Workers:    m.workers,
		Powers:     powers,
	})
	if err != nil {
		return err
	}
	m.policy = sched.Offset(pol, m.base)
	copy(m.planACP, m.liveACP)
	return nil
}

// NextChunk is the net/rpc entry point the gob slaves call: deposit
// previous results, get the next interval (or, with Prefetch, the one
// after it). It is the one-grant special case of nextBatch.
func (m *Master) NextChunk(args ChunkArgs, reply *ChunkReply) error {
	var grants [1]sched.Assignment
	rep := wire.Reply{Grants: grants[:0]}
	if err := m.nextBatch(args, 1, &rep); err != nil {
		return err
	}
	reply.Stop = rep.Stop
	if len(rep.Grants) > 0 {
		reply.Assign = rep.Grants[0]
	}
	return nil
}

// nextBatch is the transport-independent request handler: deposit the
// piggy-backed results, account the worker's timing, then grant up to
// `credits` chunks into rep (clamped to the ledger room). The first
// grant carries the full protocol semantics — parking a drained
// worker, Stop on completion, empty replies for unlucky prefetches —
// while further grants are best-effort top-ups.
func (m *Master) nextBatch(args ChunkArgs, credits int, rep *wire.Reply) (err error) {
	if args.Worker < 0 || args.Worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", args.Worker)
	}
	if credits < 1 {
		credits = 1
	}
	now := time.Now()
	reqAt := m.bus.Now() // request arrival on the telemetry clock
	// Stamp the reply time only when a reply is actually produced: an
	// errored call never reaches the worker's loop, so stamping it
	// would corrupt the next request's communication gap.
	defer func() {
		if err == nil {
			s := &m.slots[args.Worker]
			s.mu.Lock()
			s.lastReply = time.Now()
			s.mu.Unlock()
		}
	}()

	// Deposit piggy-backed results first — they are valid data even
	// when the sender has since been declared dead.
	if err := m.deposit(args.Results); err != nil {
		return err
	}
	if m.account(&args, now, reqAt) {
		// Resurrected-worker race: a worker declared dead that calls
		// again was merely slow. Its chunks were requeued, so handing
		// it more work would compute iterations twice; send it home,
		// and keep it out of both the stopped and failed completion
		// counters (it is already in failed).
		rep.Stop = true
		return nil
	}
	if args.DepositOnly {
		// A ledger worker's completion report: no reply will be read,
		// so granting into rep would silently lose chunks.
		return nil
	}
	if m.fastGrants(&args, credits, rep, reqAt) {
		return nil
	}
	return m.lockedGrants(&args, credits, rep, reqAt)
}

// deposit files piggy-backed results into the lock-free ledger and
// finishes the run when the last iteration lands.
func (m *Master) deposit(results []ChunkResult) error {
	for _, r := range results {
		if r.Index < 0 || r.Index >= m.iterations {
			return fmt.Errorf("exec: result index %d out of range", r.Index)
		}
		if m.got[r.Index].CompareAndSwap(false, true) {
			m.results[r.Index] = r.Data
			m.received.Add(1)
		}
	}
	if m.iterations > 0 && int(m.received.Load()) >= m.iterations {
		m.mu.Lock()
		m.maybeFinish()
		m.mu.Unlock()
	}
	return nil
}

// account retires delivered assignments from the worker's ledger,
// requeues abandoned ones, publishes the join/request events and
// books the reported timing. It reports true when the worker has been
// declared dead and must be sent home.
func (m *Master) account(args *ChunkArgs, now time.Time, reqAt float64) (rejected bool) {
	s := &m.slots[args.Worker]
	var requeue []sched.Assignment
	s.mu.Lock()
	kept := s.outstanding[:0]
	for _, a := range s.outstanding {
		if !m.delivered(a) {
			kept = append(kept, a)
		}
	}
	if !args.Prefetch && len(kept) > 0 {
		// A non-prefetch request declares the worker has nothing left
		// in flight: any still-undelivered chunk was abandoned (e.g.
		// the worker process restarted) and is requeued rather than
		// lost.
		requeue = append(requeue, kept...)
		kept = kept[:0]
	}
	s.outstanding = kept
	rejected = s.failed
	if !rejected {
		if !s.joined {
			s.joined = true
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.WorkerJoined, Worker: args.Worker,
				ACP: args.ACP, At: reqAt,
			})
		}
		if !args.DepositOnly {
			// A deposit files results without asking for work; only
			// grant-seeking calls count as protocol requests.
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.ChunkRequested, Worker: args.Worker,
				ACP: args.ACP, At: reqAt,
			})
		}
		s.lastSeen = now
		// Per-PE breakdown: the worker reports computation and stall
		// time; the rest of the reply-to-request turnaround is
		// communication (request/result transfer) from the master's
		// point of view. The gap is charged even for near-zero-duration
		// chunks — only the very first request (no previous reply) has
		// no gap to measure.
		if args.CompSeconds > 0 {
			s.times.Comp += args.CompSeconds
			m.compHist.Record(args.Worker, args.CompSeconds)
		}
		if args.IdleSeconds > 0 {
			s.times.Idle += args.IdleSeconds
		}
		if prev := s.lastReply; !prev.IsZero() {
			if gap := now.Sub(prev).Seconds() - args.CompSeconds - args.IdleSeconds; gap > 0 {
				s.times.Comm += gap
			}
		}
	}
	s.mu.Unlock()
	if len(requeue) > 0 {
		m.mu.Lock()
		m.requeued = append(m.requeued, requeue...)
		m.fastOff.Store(true) // requeued work must not be stranded
		m.ready.Broadcast()   // a parked worker can pick these up
		m.mu.Unlock()
	}
	if rejected {
		m.bus.Publish(telemetry.Event{
			Kind: telemetry.WorkerRejected, Worker: args.Worker, At: reqAt,
		})
	}
	return rejected
}

// fastGrants serves a request entirely without Master.mu: grants come
// from the atomic iteration counter, the ledger update from the
// worker's own slot lock. It reports false when the request needs the
// locked scheduler (non-fixed scheme, failures pending, counter
// drained on a parkable request, run finished).
func (m *Master) fastGrants(args *ChunkArgs, credits int, rep *wire.Reply, reqAt float64) bool {
	if (m.fastStep == 0 && m.ledgerTab == nil) || m.fastOff.Load() || m.doneClosed() {
		return false
	}
	s := &m.slots[args.Worker]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false // FailWorker won the race; locked path replies Stop
	}
	for len(rep.Grants) < credits && len(s.outstanding) < m.ledgerCap() {
		a, ok := m.fastTake(args.Worker)
		if !ok {
			if len(rep.Grants) > 0 {
				return true // partial batch; the tail is someone else's
			}
			if args.Prefetch {
				m.publishMiss(args.Worker, reqAt)
				return true // empty: finish your chunk, ask again plainly
			}
			return false // drained sync request: park on the locked path
		}
		m.recordGrant(s, args, a, rep, reqAt)
	}
	if len(rep.Grants) == 0 {
		// Ledger full — only reachable on a prefetch from a worker
		// that has not delivered yet. Empty reply: ask again later.
		m.publishMiss(args.Worker, reqAt)
	}
	return true
}

// fastTake claims the next fixed-size chunk from the atomic counter,
// clipping the final chunk to the remaining iterations exactly as the
// policy's counter would. In ledger mode the claim is a fetch-and-add
// on the shared step counter instead, so master-path grants and the
// workers' one-sided claims interleave without double-assignment; each
// successful in-process claim counts as one ledger fetch (zero round
// trip) so loopsched_ledger_fetchadds_total tallies every fetch-and-add
// regardless of which side issued it.
func (m *Master) fastTake(w int) (sched.Assignment, bool) {
	if m.ledgerTab != nil {
		step, _ := m.ledgerCtr.FetchAdd(1)
		a, ok := m.ledgerTab.Chunk(step)
		if ok && m.bus != nil {
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.LedgerFetch, Worker: w,
				Start: 1, At: m.bus.Now(),
			})
		}
		return a, ok
	}
	total := int64(m.iterations)
	for {
		cur := m.fastNext.Load()
		if cur >= total {
			return sched.Assignment{}, false
		}
		size := int64(m.fastStep)
		if rest := total - cur; size > rest {
			size = rest
		}
		if m.fastNext.CompareAndSwap(cur, cur+size) {
			return sched.Assignment{Start: int(cur), Size: int(size)}, true
		}
	}
}

// lockedGrants is the fallback scheduler: the distributed gather
// barrier, mid-run replans, requeued chunks, parking and stop
// handling all live here, under Master.mu as in the original
// protocol.
func (m *Master) lockedGrants(args *ChunkArgs, credits int, rep *wire.Reply, reqAt float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.liveACP[args.Worker] = args.ACP
	if m.policy == nil { // distributed: gather all first reports
		if !m.seen[args.Worker] {
			m.seen[args.Worker] = true
			m.gathered++
		}
		if m.gathered < m.workers {
			// A cancelled run closes done without ever completing the
			// gather; the barrier must observe that or waiters hang.
			for m.policy == nil && m.err == nil && m.gathered < m.workers && !m.doneClosed() {
				m.ready.Wait()
			}
		}
		if m.policy == nil && m.err == nil && !m.doneClosed() {
			m.err = m.plan()
			m.ready.Broadcast()
		}
		if m.err != nil {
			m.ready.Broadcast()
			return m.err
		}
		if m.policy == nil { // cancelled mid-gather: assign sends Stop
			return m.assign(args, credits, rep, reqAt)
		}
	} else if sched.Distributed(m.scheme) && !m.disableRe &&
		acp.MajorityChanged(m.planACP, m.liveACP) {
		if err := m.plan(); err == nil {
			m.replans++
			m.bus.Publish(telemetry.Event{
				Kind: telemetry.StageAdvanced, Worker: args.Worker,
				At: m.bus.Now(),
			})
		}
	}
	return m.assign(args, credits, rep, reqAt)
}

// assign hands the worker its next interval(s): requeued chunks
// before fresh policy assignments. When the policy is drained, a
// prefetch request gets an immediate empty reply, while a plain
// request parks inside the call until the run completes or a failure
// requeues work — so a late FailWorker always finds a live worker to
// absorb the chunk (the lost-iterations fix). Once a first grant is
// in hand, further credits are filled best-effort without parking.
// Callers hold mu.
func (m *Master) assign(args *ChunkArgs, credits int, rep *wire.Reply, reqAt float64) error {
	w := args.Worker
	s := &m.slots[w]
	for len(rep.Grants) == 0 {
		select {
		case <-m.done:
			if !m.stoppedSet[w] {
				m.stoppedSet[w] = true
			}
			rep.Stop = true
			return nil
		default:
		}
		if m.err != nil {
			return m.err
		}
		if m.failed[w] { // failed while parked
			rep.Stop = true
			return nil
		}
		if m.slotLedger(s) >= m.ledgerCap() {
			m.publishMiss(w, m.bus.Now())
			return nil
		}
		if a, ok := m.takeRequeued(); ok {
			m.recordGrantLocked(s, args, a, rep, reqAt)
			break
		}
		if a, ok := m.policyNext(w, float64(args.ACP)); ok {
			m.recordGrantLocked(s, args, a, rep, reqAt)
			break
		}
		if args.Prefetch {
			// Nothing to prefetch right now; the worker still has its
			// current chunk to finish and deliver.
			m.publishMiss(w, m.bus.Now())
			return nil
		}
		// The worker is idle with nothing in flight. Hold the call:
		// either the run completes (Stop) or a failed worker's chunk
		// is requeued and lands here.
		m.parked[w] = true
		m.ready.Wait()
		m.parked[w] = false
		s.mu.Lock()
		s.lastSeen = time.Now() // parked, not silent
		s.mu.Unlock()
	}
	for len(rep.Grants) < credits && !m.doneClosed() && !m.failed[w] &&
		m.slotLedger(s) < m.ledgerCap() {
		a, ok := m.takeRequeued()
		if !ok {
			a, ok = m.policyNext(w, float64(args.ACP))
		}
		if !ok {
			break
		}
		m.recordGrantLocked(s, args, a, rep, reqAt)
	}
	return nil
}

// policyNext is the single source of fresh grants for both paths:
// the atomic counter for fixed-chunk schemes (so fast and locked
// grants can never double-assign), the policy otherwise. Callers
// hold mu.
func (m *Master) policyNext(w int, acpv float64) (sched.Assignment, bool) {
	if m.fastStep > 0 || m.ledgerTab != nil {
		return m.fastTake(w)
	}
	a, ok := m.policy.Next(sched.Request{Worker: w, ACP: acpv})
	if ok {
		m.base = a.End()
	}
	return a, ok
}

// slotLedger reads the worker's in-flight count; callers hold mu.
func (m *Master) slotLedger(s *slot) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outstanding)
}

// recordGrant books one assignment into the worker's ledger and the
// reply, publishing the span-tagged grant (with its request-to-grant
// latency) to the telemetry bus. The span rides back in the reply's
// span block only when telemetry is attached, so a bus-less master's
// frames stay byte-identical to protocol v1. Callers hold s.mu.
func (m *Master) recordGrant(s *slot, args *ChunkArgs, a sched.Assignment, rep *wire.Reply, reqAt float64) {
	s.outstanding = append(s.outstanding, a)
	m.chunks.Add(1)
	rep.Grants = append(rep.Grants, a)
	if m.bus != nil {
		span := telemetry.SpanID(0, a.Start)
		rep.Spans = append(rep.Spans, span)
		kind := telemetry.ChunkGranted
		if args.Prefetch {
			kind = telemetry.ChunkPrefetched
		}
		now := m.bus.Now()
		m.waitHist.Record(args.Worker, now-reqAt)
		m.bus.Publish(telemetry.Event{
			Kind: kind, Worker: args.Worker, Start: a.Start, Size: a.Size,
			ACP: args.ACP, Span: span, At: now, Seconds: now - reqAt,
		})
	}
}

// recordGrantLocked is recordGrant for callers holding mu (but not
// the slot lock).
func (m *Master) recordGrantLocked(s *slot, args *ChunkArgs, a sched.Assignment, rep *wire.Reply, reqAt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m.recordGrant(s, args, a, rep, reqAt)
}

// publishMiss reports a prefetch that could not be served.
func (m *Master) publishMiss(w int, at float64) {
	m.bus.Publish(telemetry.Event{
		Kind: telemetry.PrefetchMissed, Worker: w, At: at,
	})
}

// takeRequeued pops the next requeued chunk that still has undelivered
// iterations (a failed worker may have delivered its chunk after the
// requeue); callers hold mu.
func (m *Master) takeRequeued() (sched.Assignment, bool) {
	for len(m.requeued) > 0 {
		a := m.requeued[0]
		m.requeued = m.requeued[1:]
		if !m.delivered(a) {
			return a, true
		}
	}
	return sched.Assignment{}, false
}

// delivered reports whether every iteration of the assignment has
// been received. It reads only the atomic flags, so it is safe on
// both the locked and the lock-free path.
func (m *Master) delivered(a sched.Assignment) bool {
	for i := a.Start; i < a.End(); i++ {
		if !m.got[i].Load() {
			return false
		}
	}
	return true
}

// failedCount is the number of workers declared dead; callers hold mu.
func (m *Master) failedCount() int { return len(m.failed) }

// checkDone finishes the run when every result is in, or when no
// worker is left to produce the missing ones; callers hold mu.
func (m *Master) checkDone() {
	if int(m.received.Load()) >= m.iterations || m.failedCount() >= m.workers {
		m.maybeFinish()
	}
}

// doneClosed reports whether the run has finished (or been
// cancelled).
func (m *Master) doneClosed() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// maybeFinish closes done once and wakes parked workers so they can be
// stopped; callers hold mu.
func (m *Master) maybeFinish() {
	select {
	case <-m.done:
	default:
		m.finished = time.Now()
		close(m.done)
		if m.ready != nil {
			m.ready.Broadcast()
		}
	}
}

// FailWorker declares a worker dead: its in-flight chunks are
// requeued for the surviving workers, and it no longer counts toward
// run completion. Call it when a slave's connection drops or a
// heartbeat times out; the loop still completes as long as at least
// one worker survives.
func (m *Master) FailWorker(worker int) error {
	if worker < 0 || worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed[worker] || m.stoppedSet[worker] {
		return nil // already accounted for
	}
	// From here on every grant must see the failure and the requeued
	// work; the fast path cannot, so retire it for the rest of the run.
	m.fastOff.Store(true)
	m.failed[worker] = true
	m.bus.Publish(telemetry.Event{
		Kind: telemetry.WorkerTimedOut, Worker: worker, At: m.bus.Now(),
	})
	s := &m.slots[worker]
	s.mu.Lock()
	s.failed = true
	out := s.outstanding
	s.outstanding = nil
	s.mu.Unlock()
	if len(out) > 0 {
		m.requeued = append(m.requeued, out...)
	}
	// A worker that dies during the distributed gather must not stall
	// the barrier.
	if m.policy == nil && !m.seen[worker] {
		m.seen[worker] = true
		m.gathered++
		if m.gathered >= m.workers {
			m.err = m.plan()
		}
	}
	m.checkDone()
	m.ready.Broadcast() // wake parked workers: requeued work or all-failed finish
	return nil
}

// LastContact returns when the worker last called NextChunk (the
// master's start time if it never has).
func (m *Master) LastContact(worker int) (time.Time, error) {
	if worker < 0 || worker >= m.workers {
		return time.Time{}, fmt.Errorf("exec: unknown worker %d", worker)
	}
	s := &m.slots[worker]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeen, nil
}

// WatchTimeouts fails any worker silent for longer than `timeout`,
// checking every `interval`, until the run completes or stop is
// closed. It runs in the calling goroutine; start it with `go`. This
// turns FailWorker's manual requeue into automatic crash recovery.
// Workers parked inside a held NextChunk call are alive by definition
// and are never timed out.
func (m *Master) WatchTimeouts(interval, timeout time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			now := time.Now()
			m.mu.Lock()
			var stale []int
			for w := 0; w < m.workers; w++ {
				if m.failed[w] || m.parked[w] {
					continue
				}
				s := &m.slots[w]
				s.mu.Lock()
				silent := now.Sub(s.lastSeen) > timeout
				s.mu.Unlock()
				if silent {
					stale = append(stale, w)
				}
			}
			m.mu.Unlock()
			for _, w := range stale {
				// FailWorker re-checks state under the lock.
				_ = m.FailWorker(w)
			}
		}
	}
}

// Outstanding returns the chunks currently in flight, keyed by worker.
// A worker can hold up to window+1 entries: the chunk being computed
// and its credit window of prefetched ones.
func (m *Master) Outstanding() map[int][]sched.Assignment {
	out := make(map[int][]sched.Assignment)
	for w := range m.slots {
		s := &m.slots[w]
		s.mu.Lock()
		if len(s.outstanding) > 0 {
			out[w] = append([]sched.Assignment(nil), s.outstanding...)
		}
		s.mu.Unlock()
	}
	return out
}

// Parked returns how many workers are currently idling inside a held
// NextChunk call, waiting for requeued work or the end of the run.
func (m *Master) Parked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, p := range m.parked {
		if p {
			n++
		}
	}
	return n
}

// DisableReplan turns off the mid-run majority re-plan for distributed
// schemes. The hierarchical root scheme requires it: steals grant
// ranges out of monotone order, which the re-plan's base-offset
// bookkeeping would corrupt. Call before serving.
func (m *Master) DisableReplan() {
	m.mu.Lock()
	m.disableRe = true
	m.mu.Unlock()
}

// Cancel aborts the run: parked workers are released with Stop
// replies, in-progress workers are stopped on their next request, and
// Wait returns cause. A nil cause means context.Canceled. Cancelling
// an already-finished run is a no-op.
func (m *Master) Cancel(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	m.fastOff.Store(true) // route every new request past the done check
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case <-m.done: // finished first; keep that outcome
		return
	default:
	}
	m.cancelErr = cause
	m.maybeFinish()
	m.ready.Broadcast()
}

// WaitContext is Wait with cancellation: when ctx ends first the run
// is cancelled (releasing any workers parked in NextChunk) and ctx's
// error is returned.
func (m *Master) WaitContext(ctx context.Context) ([][]byte, metrics.Report, error) {
	select {
	case <-m.done:
	case <-ctx.Done():
		m.Cancel(ctx.Err())
	}
	return m.Wait()
}

// Wait blocks until the run completes — every iteration delivered, or
// no live worker left to produce the missing ones — and returns the
// collected per-iteration results plus a report. Missing results
// surface as a non-nil error.
func (m *Master) Wait() ([][]byte, metrics.Report, error) {
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := metrics.Report{
		Scheme:     m.scheme.Name(),
		Workers:    m.workers,
		Iterations: m.iterations,
		Chunks:     int(m.chunks.Load()),
		Replans:    m.replans,
		Tp:         m.finished.Sub(m.started).Seconds(),
		PerWorker:  make([]metrics.Times, m.workers),
	}
	rep.GrantLatency = m.waitHist.Snapshot().Summarize()
	rep.CompLatency = m.compHist.Snapshot().Summarize()
	for w := range m.slots {
		s := &m.slots[w]
		s.mu.Lock()
		rep.PerWorker[w] = s.times
		s.mu.Unlock()
	}
	// What is neither computing, communicating nor stalled is waiting.
	for i := range rep.PerWorker {
		if wait := rep.Tp - rep.PerWorker[i].Total(); wait > 0 {
			rep.PerWorker[i].Wait = wait
		}
	}
	var err error
	if got := int(m.received.Load()); got != m.iterations {
		err = fmt.Errorf("exec: %d of %d results missing", m.iterations-got, m.iterations)
	}
	if m.cancelErr != nil {
		err = m.cancelErr
	}
	return m.results, rep, err
}

// Kernel computes one iteration and returns its serialized result.
type Kernel func(iteration int) []byte

// Worker is an RPC slave: it loops requesting chunks from the master,
// computing them with the kernel, and piggy-backing results.
type Worker struct {
	ID int
	// Kernel computes one iteration.
	Kernel Kernel
	// VirtualPower is the slave's V_i (≥ 1; 0 means 1).
	VirtualPower float64
	// LoadProbe returns the current external load (Q_i − 1); nil
	// means unloaded. In pipelined mode it is called from the
	// communication goroutine, concurrently with the kernel.
	LoadProbe func() int
	// ACPModel converts power and load into the reported ACP.
	ACPModel acp.Model
	// WorkScale repeats the kernel per iteration to emulate a slower
	// machine (1 = full speed).
	WorkScale int
	// Pipeline enables the double-buffered protocol: the next chunk is
	// prefetched and the previous results uploaded while the kernel
	// runs, hiding the master round-trip whenever it is shorter than
	// the chunk's computation.
	Pipeline bool
	// Transport selects the wire format (empty uses DefaultTransport,
	// i.e. the LOOPSCHED_TRANSPORT environment variable or the binary
	// codec).
	Transport Transport
	// Window is the credit window on the binary transport: how many
	// granted chunks the worker queues beyond the one it is computing
	// (0 means 1). The gob transport ignores it — its protocol carries
	// one grant per round trip.
	Window int
	// LedgerTable, when non-nil, switches the binary transport to the
	// one-sided ledger protocol: the worker claims scheduling steps
	// with fetch-and-add frames and computes chunk boundaries from this
	// replica of the master's table, reporting completions in no-reply
	// deposits. It must be built from the same scheme and Config as the
	// master's (SetLedger); the gob transport ignores it.
	LedgerTable *ledger.Table
	// Telemetry, when non-nil, receives a ChunkCompleted event for
	// every chunk this worker computes. TelemetryID and TelemetryShard
	// label those events; TelemetryID must be the run-global worker id
	// (the hierarchical runtime hands workers shard-local IDs).
	Telemetry      *telemetry.Bus
	TelemetryID    int
	TelemetryShard int
}

// publishCompleted reports one computed chunk to the telemetry bus
// (no-op when none is attached). reportedACP is the ACP carried on the
// request that fetched the chunk; span is the chunk's trace span id —
// the one the master stamped on the grant, or the deterministic local
// id when the master sent none.
func (w Worker) publishCompleted(a sched.Assignment, span uint64, reportedACP int, comp float64) {
	w.Telemetry.Publish(telemetry.Event{
		Kind:   telemetry.ChunkCompleted,
		Worker: w.TelemetryID, Shard: w.TelemetryShard,
		Start: a.Start, Size: a.Size, ACP: reportedACP, Span: span,
		At: w.Telemetry.Now(), Seconds: comp,
	})
}

func (w Worker) power() float64 {
	if w.VirtualPower <= 0 {
		return 1
	}
	return w.VirtualPower
}

func (w Worker) scale() int {
	if w.WorkScale < 1 {
		return 1
	}
	return w.WorkScale
}

func (w Worker) window() int {
	if w.Window < 1 {
		return 1
	}
	return w.Window
}

// args builds one request from the worker's current state.
func (w Worker) args(prefetch bool, results []ChunkResult, comp, idle float64) ChunkArgs {
	load := 0
	if w.LoadProbe != nil {
		load = w.LoadProbe()
	}
	return ChunkArgs{
		Worker:      w.ID,
		ACP:         w.ACPModel.ACP(w.power(), 1+load),
		CompSeconds: comp,
		IdleSeconds: idle,
		Results:     results,
		Prefetch:    prefetch,
	}
}

// compute runs the kernel over one assignment.
func (w Worker) compute(a sched.Assignment) []ChunkResult {
	results := make([]ChunkResult, 0, a.Size)
	for i := a.Start; i < a.End(); i++ {
		var data []byte
		for rep := 0; rep < w.scale(); rep++ {
			data = w.Kernel(i)
		}
		results = append(results, ChunkResult{Index: i, Data: data})
	}
	return results
}

// Run connects to the master at addr and participates until stopped.
func (w Worker) Run(addr string) error {
	return w.RunContext(context.Background(), addr)
}

// RunContext is Run with cancellation: the dial honours ctx, and a
// cancellation mid-run closes the connection, which unblocks any
// in-flight call; the method then returns ctx's error.
func (w Worker) RunContext(ctx context.Context, addr string) error {
	if w.Kernel == nil {
		return errors.New("exec: worker needs a kernel")
	}
	transport, ok := w.Transport.Normalize()
	if !ok {
		return fmt.Errorf("exec: unknown transport %q", w.Transport)
	}
	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	if transport == TransportBinary {
		err = w.runWire(ctx, conn)
	} else {
		err = w.runNetRPC(ctx, conn)
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// runNetRPC drives the original gob protocol over conn.
func (w Worker) runNetRPC(ctx context.Context, conn net.Conn) error {
	client := rpc.NewClient(conn)
	defer client.Close()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			client.Close()
		case <-watchDone:
		}
	}()
	if w.Pipeline {
		return w.runPipelined(client)
	}
	return w.runSerial(client)
}

// runSerial is the paper's §3.1 slave loop: request, compute, piggy-
// back, repeat. Communication is strictly serialised with computation.
func (w Worker) runSerial(client *rpc.Client) error {
	var results []ChunkResult
	var compSeconds float64
	for {
		req := w.args(false, results, compSeconds, 0)
		var reply ChunkReply
		if err := client.Call("Master.NextChunk", req, &reply); err != nil {
			return err
		}
		if reply.Stop {
			return nil
		}
		start := time.Now()
		results = w.compute(reply.Assign)
		compSeconds = time.Since(start).Seconds()
		w.publishCompleted(reply.Assign, telemetry.SpanID(0, reply.Assign.Start), req.ACP, compSeconds)
	}
}

// replyPool recycles the asynchronous call replies of the pipelined
// gob loop: rpc.Client.Go needs a reply value that outlives the call,
// and allocating one per chunk made the reply path the loop's only
// steady-state garbage.
var replyPool = sync.Pool{New: func() any { return new(ChunkReply) }}

// getReply takes a zeroed reply from the pool.
func getReply() *ChunkReply {
	r := replyPool.Get().(*ChunkReply)
	*r = ChunkReply{}
	return r
}

// runPipelined overlaps communication with computation: while the
// kernel runs on chunk k, the request for chunk k+1 — carrying chunk
// k−1's results — is already in flight on a second goroutine, so the
// master round-trip is hidden whenever it is shorter than the kernel.
func (w Worker) runPipelined(client *rpc.Client) error {
	// The first chunk is fetched synchronously (for distributed
	// schemes this request also joins the gather barrier).
	var reply ChunkReply
	if err := client.Call("Master.NextChunk", w.args(false, nil, 0, 0), &reply); err != nil {
		return err
	}
	var pending []ChunkResult // computed results not yet shipped
	var comp, idle float64    // their timing, not yet shipped
	for {
		switch {
		case reply.Stop:
			if len(pending) == 0 {
				return nil
			}
			// Ship the final chunk's results; the master answers Stop
			// again (or, if it somehow has work, the loop runs it).
			if err := client.Call("Master.NextChunk", w.args(false, pending, comp, idle), &reply); err != nil {
				return err
			}
			pending, comp, idle = nil, 0, 0

		case reply.Assign.Size == 0:
			// Empty prefetch reply: the master had nothing to issue.
			// Deliver what we hold and ask again without the flag —
			// the call parks at the master until the run completes or
			// a failed worker's chunk needs a new home.
			if err := client.Call("Master.NextChunk", w.args(false, pending, comp, idle), &reply); err != nil {
				return err
			}
			pending, comp, idle = nil, 0, 0

		default:
			// Launch the prefetch for the next chunk (carrying the
			// previous chunk's results), then compute this one.
			req := w.args(true, pending, comp, idle)
			asyncReply := getReply()
			fetch := client.Go("Master.NextChunk", req, asyncReply, nil)
			start := time.Now()
			results := w.compute(reply.Assign)
			comp = time.Since(start).Seconds()
			w.publishCompleted(reply.Assign, telemetry.SpanID(0, reply.Assign.Start), req.ACP, comp)

			waitStart := time.Now()
			<-fetch.Done
			idle = time.Since(waitStart).Seconds() // prefetch-miss stall
			if fetch.Error != nil {
				replyPool.Put(asyncReply)
				return fetch.Error
			}
			reply = *asyncReply
			replyPool.Put(asyncReply)
			pending = results
		}
	}
}
