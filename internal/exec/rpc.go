package exec

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
)

// The RPC runtime mirrors the paper's mpich implementation: slaves
// call the master for work, piggy-backing the results of the previous
// chunk on each request (§5's communication optimisation), and the
// master replies with an iteration interval or a stop flag.

// ChunkResult carries the output of one computed iteration back to
// the master.
type ChunkResult struct {
	Index int
	Data  []byte
}

// ChunkArgs is a slave's work request.
type ChunkArgs struct {
	Worker int
	// ACP is the slave's available computing power (0 for simple
	// schemes / unknown).
	ACP int
	// CompSeconds is the measured computation time of the previous
	// chunk (0 on the first request) — the master derives the paper's
	// per-PE T_comp/T_comm breakdown from it.
	CompSeconds float64
	// Results are the outputs of the previously assigned chunk.
	Results []ChunkResult
}

// ChunkReply is the master's answer.
type ChunkReply struct {
	Assign sched.Assignment
	Stop   bool
}

// Master is the RPC scheduling service. Create with NewMaster, expose
// with Serve, then Wait for completion.
type Master struct {
	scheme     sched.Scheme
	iterations int
	workers    int
	disableRe  bool

	mu          sync.Mutex
	gathered    int
	seen        []bool
	ready       *sync.Cond
	policy      sched.Policy
	liveACP     []int
	planACP     []int
	base        int
	stopped     int
	stoppedSet  []bool
	results     [][]byte
	got         []bool
	received    int
	chunks      int
	replans     int
	outstanding map[int]sched.Assignment // chunk in flight per worker
	requeued    []sched.Assignment       // failed workers' chunks to re-issue
	failed      map[int]bool
	lastSeen    []time.Time
	lastReply   []time.Time
	perWorker   []metrics.Times
	started     time.Time
	finished    time.Time
	done        chan struct{}
	err         error
}

// NewMaster builds a master scheduling `iterations` loop iterations
// across `workers` slaves under the scheme.
func NewMaster(scheme sched.Scheme, iterations, workers int) (*Master, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("exec: master needs at least one worker")
	}
	if iterations < 0 {
		return nil, fmt.Errorf("exec: negative iteration count")
	}
	m := &Master{
		scheme:      scheme,
		iterations:  iterations,
		workers:     workers,
		seen:        make([]bool, workers),
		liveACP:     make([]int, workers),
		planACP:     make([]int, workers),
		results:     make([][]byte, iterations),
		got:         make([]bool, iterations),
		outstanding: make(map[int]sched.Assignment),
		failed:      make(map[int]bool),
		lastSeen:    make([]time.Time, workers),
		lastReply:   make([]time.Time, workers),
		perWorker:   make([]metrics.Times, workers),
		stoppedSet:  make([]bool, workers),
		done:        make(chan struct{}),
		started:     time.Now(),
	}
	for i := range m.lastSeen {
		m.lastSeen[i] = m.started
	}
	m.ready = sync.NewCond(&m.mu)
	if !sched.Distributed(scheme) {
		pol, err := scheme.NewPolicy(sched.Config{Iterations: iterations, Workers: workers})
		if err != nil {
			return nil, err
		}
		m.policy = pol
	}
	return m, nil
}

// Serve registers the master on a fresh RPC server and accepts
// connections until the listener closes. It returns immediately;
// close the listener after Wait to shut down.
func (m *Master) Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", m); err != nil {
		return err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return nil
}

// plan (re)builds the policy from the live ACPs; callers hold mu.
func (m *Master) plan() error {
	powers := make([]float64, m.workers)
	for i, a := range m.liveACP {
		if a < 1 {
			a = 1
		}
		powers[i] = float64(a)
	}
	pol, err := m.scheme.NewPolicy(sched.Config{
		Iterations: m.iterations - m.base,
		Workers:    m.workers,
		Powers:     powers,
	})
	if err != nil {
		return err
	}
	m.policy = sched.Offset(pol, m.base)
	copy(m.planACP, m.liveACP)
	return nil
}

// NextChunk is the RPC the slaves call: deposit previous results, get
// the next interval.
func (m *Master) NextChunk(args ChunkArgs, reply *ChunkReply) error {
	if args.Worker < 0 || args.Worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", args.Worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	m.lastSeen[args.Worker] = now
	// Per-PE breakdown: the worker reports its computation time; the
	// rest of the reply-to-request turnaround is communication (the
	// request/results transfer) from the master's point of view.
	if args.CompSeconds > 0 {
		m.perWorker[args.Worker].Comp += args.CompSeconds
		if prev := m.lastReply[args.Worker]; !prev.IsZero() {
			if gap := now.Sub(prev).Seconds() - args.CompSeconds; gap > 0 {
				m.perWorker[args.Worker].Comm += gap
			}
		}
	}
	defer func() { m.lastReply[args.Worker] = time.Now() }()

	for _, r := range args.Results {
		if r.Index < 0 || r.Index >= m.iterations {
			return fmt.Errorf("exec: result index %d out of range", r.Index)
		}
		if !m.got[r.Index] {
			m.got[r.Index] = true
			m.received++
		}
		m.results[r.Index] = r.Data
	}
	m.liveACP[args.Worker] = args.ACP

	if m.policy == nil { // distributed: gather all first reports
		if !m.seen[args.Worker] {
			m.seen[args.Worker] = true
			m.gathered++
		}
		if m.gathered < m.workers {
			for m.policy == nil && m.err == nil && m.gathered < m.workers {
				m.ready.Wait()
			}
		}
		if m.policy == nil && m.err == nil {
			m.err = m.plan()
			m.ready.Broadcast()
		}
		if m.err != nil {
			m.ready.Broadcast()
			return m.err
		}
	} else if sched.Distributed(m.scheme) && !m.disableRe &&
		acp.MajorityChanged(m.planACP, m.liveACP) {
		if err := m.plan(); err == nil {
			m.replans++
		}
	}

	// The worker has delivered (or abandoned) its previous chunk.
	delete(m.outstanding, args.Worker)

	// Chunks requeued from failed workers are re-issued before new
	// policy assignments.
	if len(m.requeued) > 0 {
		a := m.requeued[0]
		m.requeued = m.requeued[1:]
		m.outstanding[args.Worker] = a
		m.chunks++
		reply.Assign = a
		return nil
	}

	a, ok := m.policy.Next(sched.Request{Worker: args.Worker, ACP: float64(args.ACP)})
	if !ok {
		reply.Stop = true
		if !m.stoppedSet[args.Worker] {
			m.stoppedSet[args.Worker] = true
			m.stopped++
		}
		if m.stopped+m.failedCount() >= m.workers {
			m.maybeFinish()
		}
		return nil
	}
	m.base = a.End()
	m.chunks++
	m.outstanding[args.Worker] = a
	reply.Assign = a
	return nil
}

// failedCount is the number of workers declared dead; callers hold mu.
func (m *Master) failedCount() int { return len(m.failed) }

// maybeFinish closes done once; callers hold mu.
func (m *Master) maybeFinish() {
	select {
	case <-m.done:
	default:
		m.finished = time.Now()
		close(m.done)
	}
}

// FailWorker declares a worker dead: its in-flight chunk (if any) is
// requeued for the surviving workers, and it no longer counts toward
// run completion. Call it when a slave's connection drops or a
// heartbeat times out; the loop still completes as long as at least
// one worker survives.
func (m *Master) FailWorker(worker int) error {
	if worker < 0 || worker >= m.workers {
		return fmt.Errorf("exec: unknown worker %d", worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed[worker] || m.stoppedSet[worker] {
		return nil // already accounted for
	}
	m.failed[worker] = true
	if a, ok := m.outstanding[worker]; ok {
		delete(m.outstanding, worker)
		m.requeued = append(m.requeued, a)
	}
	// A worker that dies during the distributed gather must not stall
	// the barrier.
	if m.policy == nil && !m.seen[worker] {
		m.seen[worker] = true
		m.gathered++
		if m.gathered >= m.workers {
			m.err = m.plan()
		}
		m.ready.Broadcast()
	}
	if m.stopped+m.failedCount() >= m.workers {
		m.maybeFinish()
	}
	return nil
}

// LastContact returns when the worker last called NextChunk (the
// master's start time if it never has).
func (m *Master) LastContact(worker int) (time.Time, error) {
	if worker < 0 || worker >= m.workers {
		return time.Time{}, fmt.Errorf("exec: unknown worker %d", worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeen[worker], nil
}

// WatchTimeouts fails any worker silent for longer than `timeout`,
// checking every `interval`, until the run completes or stop is
// closed. It runs in the calling goroutine; start it with `go`. This
// turns FailWorker's manual requeue into automatic crash recovery.
func (m *Master) WatchTimeouts(interval, timeout time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			now := time.Now()
			m.mu.Lock()
			var stale []int
			for w := 0; w < m.workers; w++ {
				if !m.failed[w] && now.Sub(m.lastSeen[w]) > timeout {
					stale = append(stale, w)
				}
			}
			m.mu.Unlock()
			for _, w := range stale {
				// FailWorker re-checks state under the lock.
				_ = m.FailWorker(w)
			}
		}
	}
}

// Outstanding returns the chunks currently in flight, keyed by worker.
func (m *Master) Outstanding() map[int]sched.Assignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]sched.Assignment, len(m.outstanding))
	for w, a := range m.outstanding {
		out[w] = a
	}
	return out
}

// Wait blocks until every worker has been stopped and returns the
// collected per-iteration results plus a report.
func (m *Master) Wait() ([][]byte, metrics.Report, error) {
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := metrics.Report{
		Scheme:     m.scheme.Name(),
		Workers:    m.workers,
		Iterations: m.iterations,
		Chunks:     m.chunks,
		Replans:    m.replans,
		Tp:         m.finished.Sub(m.started).Seconds(),
		PerWorker:  append([]metrics.Times(nil), m.perWorker...),
	}
	// What is neither computing nor communicating is waiting.
	for i := range rep.PerWorker {
		if wait := rep.Tp - rep.PerWorker[i].Total(); wait > 0 {
			rep.PerWorker[i].Wait = wait
		}
	}
	var err error
	if m.received != m.iterations {
		err = fmt.Errorf("exec: %d of %d results missing", m.iterations-m.received, m.iterations)
	}
	return m.results, rep, err
}

// Kernel computes one iteration and returns its serialized result.
type Kernel func(iteration int) []byte

// Worker is an RPC slave: it loops requesting chunks from the master,
// computing them with the kernel, and piggy-backing results.
type Worker struct {
	ID int
	// Kernel computes one iteration.
	Kernel Kernel
	// VirtualPower is the slave's V_i (≥ 1; 0 means 1).
	VirtualPower float64
	// LoadProbe returns the current external load (Q_i − 1); nil
	// means unloaded.
	LoadProbe func() int
	// ACPModel converts power and load into the reported ACP.
	ACPModel acp.Model
	// WorkScale repeats the kernel per iteration to emulate a slower
	// machine (1 = full speed).
	WorkScale int
}

func (w Worker) power() float64 {
	if w.VirtualPower <= 0 {
		return 1
	}
	return w.VirtualPower
}

func (w Worker) scale() int {
	if w.WorkScale < 1 {
		return 1
	}
	return w.WorkScale
}

// Run connects to the master at addr and participates until stopped.
func (w Worker) Run(addr string) error {
	if w.Kernel == nil {
		return errors.New("exec: worker needs a kernel")
	}
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer client.Close()

	var results []ChunkResult
	var compSeconds float64
	for {
		load := 0
		if w.LoadProbe != nil {
			load = w.LoadProbe()
		}
		args := ChunkArgs{
			Worker:      w.ID,
			ACP:         w.ACPModel.ACP(w.power(), 1+load),
			CompSeconds: compSeconds,
			Results:     results,
		}
		var reply ChunkReply
		if err := client.Call("Master.NextChunk", args, &reply); err != nil {
			return err
		}
		if reply.Stop {
			return nil
		}
		results = results[:0]
		start := time.Now()
		for i := reply.Assign.Start; i < reply.Assign.End(); i++ {
			var data []byte
			for rep := 0; rep < w.scale(); rep++ {
				data = w.Kernel(i)
			}
			results = append(results, ChunkResult{Index: i, Data: data})
		}
		compSeconds = time.Since(start).Seconds()
	}
}
