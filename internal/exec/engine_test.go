package exec

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"loopsched/internal/loadgen"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// TestStealExactlyOnce: the work-stealing engine runs every iteration
// exactly once per WorkScale repetition, for every registered scheme.
func TestStealExactlyOnce(t *testing.T) {
	const n = 2000
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int32, n)
		l := &Local{Scheme: s, Workers: specs(1, 1, 1, 1), Engine: EngineSteal}
		rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Iterations != n {
			t.Errorf("%s: %d iterations", name, rep.Iterations)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%s: iteration %d ran %d times", name, i, c)
			}
		}
	}
}

// TestStealExactlyOnceNarrowWindow: window 1 degenerates to one chunk
// per policy trip (no parked work to steal) and must still cover the
// loop; an oversized window exercises the deque wrap-around.
func TestStealExactlyOnceWindows(t *testing.T) {
	const n = 3000
	for _, window := range []int{1, 2, 64} {
		counts := make([]int32, n)
		l := &Local{
			Scheme: sched.GSSScheme{}, Workers: specs(1, 1, 1),
			Engine: EngineSteal, Window: window,
		}
		rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if rep.Iterations != n {
			t.Errorf("window %d: %d iterations", window, rep.Iterations)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("window %d: iteration %d ran %d times", window, i, c)
			}
		}
	}
}

// TestEngineGrantEquivalence: for non-feedback schemes on homogeneous
// workers, every policy's chunk sequence is a function of the call
// index alone, so the channel master and the steal engine must grant
// the same multiset of chunks even though request interleaving and
// batching differ.
func TestEngineGrantEquivalence(t *testing.T) {
	const n, p = 5000, 4
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if pol, err := s.NewPolicy(sched.Config{Iterations: n, Workers: p}); err != nil {
			t.Fatal(err)
		} else if _, fb := pol.(sched.FeedbackPolicy); fb {
			continue // learning policies depend on measured timings
		}
		grants := func(engine string) []sched.Assignment {
			bus := telemetry.NewBus(0)
			col := &grantCollector{}
			bus.Subscribe(col)
			scales := make([]int, p)
			for i := range scales {
				scales[i] = 1
			}
			l := &Local{Scheme: s, Workers: specs(scales...), Engine: engine, Telemetry: bus}
			rep, err := l.Run(workload.Uniform{N: n}, func(int) {})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			if rep.Iterations != n {
				t.Fatalf("%s/%s: %d iterations", name, engine, rep.Iterations)
			}
			if err := bus.Close(); err != nil {
				t.Fatalf("%s/%s: bus close: %v", name, engine, err)
			}
			sort.Slice(col.grants, func(i, j int) bool {
				return col.grants[i].Start < col.grants[j].Start
			})
			return col.grants
		}
		channel := grants(EngineChannel)
		stealG := grants(EngineSteal)
		if len(channel) != len(stealG) {
			t.Errorf("%s: channel granted %d chunks, steal %d", name, len(channel), len(stealG))
			continue
		}
		for i := range channel {
			if channel[i] != stealG[i] {
				t.Errorf("%s: grant %d differs: channel %+v, steal %+v", name, i, channel[i], stealG[i])
				break
			}
		}
	}
}

// TestStealHeterogeneous mirrors TestLocalHeterogeneous on the steal
// engine: WorkScale-3 workers repeat the body three times.
func TestStealHeterogeneous(t *testing.T) {
	const n = 500
	perIter := make([]int32, n)
	l := &Local{Scheme: sched.DTSSScheme{}, Workers: specs(1, 3), Engine: EngineSteal}
	rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
		atomic.AddInt32(&perIter[i], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, c := range perIter {
		if c != 1 && c != 3 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

// TestStealCancellation: cancelling mid-run returns ctx's error and
// leaves the executor reusable.
func TestStealCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	l := &Local{Scheme: sched.SelfScheduling, Workers: specs(1, 1), Engine: EngineSteal}
	var n atomic.Int64
	_, err := l.RunContext(ctx, workload.Uniform{N: 1 << 30}, func(i int) {
		if n.Add(1) == 100 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rep, err := l.Run(workload.Uniform{N: 100}, func(int) {})
	if err != nil || rep.Iterations != 100 {
		t.Fatalf("rerun: %v, %d iterations", err, rep.Iterations)
	}
}

func TestUnknownEngine(t *testing.T) {
	l := &Local{Scheme: sched.GSSScheme{}, Workers: specs(1), Engine: "fibers"}
	if _, err := l.Run(workload.Uniform{N: 10}, func(int) {}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestStealEmptyLoop(t *testing.T) {
	l := &Local{Scheme: sched.TSSScheme{}, Workers: specs(1, 1), Engine: EngineSteal}
	rep, err := l.Run(workload.Uniform{N: 0}, func(int) {
		t.Error("body ran on empty loop")
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Errorf("iterations = %d", rep.Iterations)
	}
}

// TestStealTelemetry: the steal engine's refill/steal events reconcile
// with the aggregator and the report.
func TestStealTelemetry(t *testing.T) {
	const n = 20000
	bus := telemetry.NewBus(0)
	agg := telemetry.NewAggregator(bus.Dropped)
	bus.Subscribe(agg)
	l := &Local{
		Scheme: sched.CSSScheme{K: 8}, Workers: specs(1, 1, 1, 1),
		Engine: EngineSteal, Telemetry: bus,
	}
	rep, err := l.Run(workload.Uniform{N: n}, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	snap := agg.Snapshot()
	if snap.LocalRefills == 0 {
		t.Error("no deque refills recorded")
	}
	if got := int(snap.Iterations); got != n {
		t.Errorf("aggregator saw %d granted iterations, want %d", got, n)
	}
	if int(snap.ChunksGranted) != rep.Chunks {
		t.Errorf("aggregator saw %d grants, report %d chunks", snap.ChunksGranted, rep.Chunks)
	}
	if int(snap.LocalSteals) != rep.Steals {
		t.Errorf("aggregator saw %d steals, report %d", snap.LocalSteals, rep.Steals)
	}
}

// recordingScheme wraps CSS so its policy records what Feedback is
// told, for the timing-drift regression below.
type recordingScheme struct {
	fed *[]float64
}

func (recordingScheme) Name() string { return "REC" }

func (r recordingScheme) NewPolicy(cfg sched.Config) (sched.Policy, error) {
	pol, err := sched.CSSScheme{K: cfg.Iterations}.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	return &recordingPolicy{Policy: pol, fed: r.fed}, nil
}

type recordingPolicy struct {
	sched.Policy
	fed *[]float64
}

func (p *recordingPolicy) Feedback(worker int, work, elapsed float64) {
	*p.fed = append(*p.fed, elapsed)
}

// TestFeedbackElapsedMatchesComp is the regression for the
// double-time.Since drift: with a single worker computing a single
// chunk, the elapsed time delivered to Feedback, the ChunkCompleted
// event, the Comp metric and the trace span must all be the one
// reading.
func TestFeedbackElapsedMatchesComp(t *testing.T) {
	for _, engine := range []string{EngineChannel, EngineSteal} {
		var fed []float64
		tr := &trace.Trace{}
		sink := 0.0
		l := &Local{
			Scheme: recordingScheme{fed: &fed}, Workers: specs(1),
			Engine: engine, Trace: tr,
		}
		rep, err := l.Run(workload.Uniform{N: 5000}, func(i int) {
			sink += math.Sqrt(float64(i))
		})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		_ = sink
		if len(fed) != 1 {
			t.Fatalf("%s: Feedback called %d times, want 1", engine, len(fed))
		}
		if comp := rep.PerWorker[0].Comp; fed[0] != comp {
			t.Errorf("%s: Feedback elapsed %.12g != Comp %.12g (readings drifted)", engine, fed[0], comp)
		}
		evs := tr.Events()
		if len(evs) != 1 {
			t.Fatalf("%s: %d trace events, want 1", engine, len(evs))
		}
		if span := evs[0].End - evs[0].Begin; math.Abs(span-fed[0]) > 1e-9 {
			t.Errorf("%s: trace span %.12g != fed elapsed %.12g", engine, span, fed[0])
		}
	}
}

// TestAddLoadConcurrentClamp is the regression for the check-then-act
// clamp: one goroutine drives the floor with -1s while another adds
// +2s. Under any linearisation of clamped operations the final load is
// at least the +2 surplus; the old Add+Store(0) could wipe concurrent
// additions wholesale.
func TestAddLoadConcurrentClamp(t *testing.T) {
	const iters = 100000
	w := &WorkerSpec{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			w.AddLoad(-1)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			w.AddLoad(2)
			if w.Load() < 0 {
				t.Error("negative load observed")
				return
			}
		}
	}()
	wg.Wait()
	// Sum of deltas is +iters; clamping only ever raises the result.
	if got := w.Load(); got < iters {
		t.Errorf("final load %d < %d: concurrent additions were lost", got, iters)
	}
}

// TestAddLoadScriptStress drives AddLoad the way a load timeline does:
// each phase of a generated script contributes a job arrival (+Extra)
// and a departure (-Extra), replayed concurrently per worker slice.
// Departures follow their arrivals, so the true load never goes
// negative and the final value must be exactly zero.
func TestAddLoadScriptStress(t *testing.T) {
	script := loadgen.Poisson(50, 0.5, 20, 42)
	if len(script) == 0 {
		t.Fatal("empty load script")
	}
	w := &WorkerSpec{}
	var wg sync.WaitGroup
	const replayers = 4
	for r := 0; r < replayers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; i < len(script); i += replayers {
				ph := script[i]
				w.AddLoad(ph.Extra)
				if w.Load() < ph.Extra {
					t.Errorf("load %d below this phase's own contribution", w.Load())
					return
				}
				w.AddLoad(-ph.Extra)
			}
		}(r)
	}
	wg.Wait()
	if got := w.Load(); got != 0 {
		t.Errorf("final load %d after balanced script, want 0", got)
	}
}
