package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

func specs(scales ...int) []*WorkerSpec {
	out := make([]*WorkerSpec, len(scales))
	for i, s := range scales {
		out[i] = &WorkerSpec{WorkScale: s}
	}
	return out
}

// TestLocalExactlyOnce: every iteration runs exactly once per
// WorkScale repetition, for every scheme, under real concurrency.
func TestLocalExactlyOnce(t *testing.T) {
	const n = 2000
	for _, name := range sched.Names() {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int32, n)
		l := &Local{Scheme: s, Workers: specs(1, 1, 1, 1)}
		rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Iterations != n {
			t.Errorf("%s: %d iterations", name, rep.Iterations)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("%s: iteration %d ran %d times", name, i, c)
			}
		}
	}
}

// TestLocalHeterogeneous: WorkScale-3 workers repeat the body three
// times per iteration, so the total body count is predictable even
// though the split is scheme-dependent.
func TestLocalHeterogeneous(t *testing.T) {
	const n = 500
	var total atomic.Int64
	perIter := make([]int32, n)
	l := &Local{Scheme: sched.DTSSScheme{}, Workers: specs(1, 3)}
	rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
		total.Add(1)
		atomic.AddInt32(&perIter[i], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	// Each iteration ran either 1× (fast worker) or 3× (slow worker).
	for i, c := range perIter {
		if c != 1 && c != 3 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	if got := total.Load(); got < int64(n) || got > int64(3*n) {
		t.Errorf("total body invocations %d out of range", got)
	}
}

// TestLocalDistributedFavoursFast: with scale-1 and scale-4 workers, a
// distributed scheme should hand most iterations to the fast worker.
func TestLocalDistributedFavoursFast(t *testing.T) {
	const n = 4000
	var mu sync.Mutex
	owner := make([]int, n)
	l := &Local{Scheme: sched.NewDFSS(), Workers: specs(1, 4)}
	rep, err := l.Run(workload.Uniform{N: n}, func(i int) {
		mu.Lock()
		owner[i]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The DFSS plan gives the scale-1 worker (V=4) 4× the share of the
	// scale-4 worker (V=1): body runs = n_fast·1 + n_slow·4 with
	// n_fast ≈ 4·n_slow.
	var runs int
	for _, c := range owner {
		runs += c
	}
	nSlow := (runs - n) / 3
	nFast := n - nSlow
	if nFast < 2*nSlow {
		t.Errorf("fast worker got %d of %d iterations, want ≫ slow's %d", nFast, n, nSlow)
	}
	if rep.Chunks == 0 {
		t.Error("no chunks recorded")
	}
}

// TestLocalLoadAdjustment: AddLoad changes the reported ACP and can
// trigger a re-plan mid-run.
func TestLocalLoadAdjustment(t *testing.T) {
	const n = 50000
	ws := specs(1, 1, 1, 1)
	l := &Local{Scheme: sched.DTSSScheme{}, Workers: ws}
	var fired atomic.Bool
	_, err := l.Run(workload.Uniform{N: n}, func(i int) {
		if i > n/10 && !fired.Load() {
			fired.Store(true)
			ws[0].AddLoad(3)
			ws[1].AddLoad(3)
			ws[2].AddLoad(3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replans are timing-dependent under real concurrency, so only
	// sanity-check the load plumbing itself.
	if ws[0].Load() != 3 {
		t.Errorf("Load = %d, want 3", ws[0].Load())
	}
	ws[0].AddLoad(-5)
	if ws[0].Load() != 0 {
		t.Errorf("Load floor broken: %d", ws[0].Load())
	}
}

// TestLocalCancellation: cancelling the context stops the run early
// with ctx's error; no goroutines are left behind (checked indirectly:
// a second run on the same executor works).
func TestLocalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	l := &Local{Scheme: sched.SelfScheduling, Workers: specs(1, 1)}
	var n atomic.Int64
	_, err := l.RunContext(ctx, workload.Uniform{N: 1 << 30}, func(i int) {
		if n.Add(1) == 100 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The executor is reusable after cancellation.
	rep, err := l.Run(workload.Uniform{N: 100}, func(int) {})
	if err != nil || rep.Iterations != 100 {
		t.Fatalf("rerun: %v, %d iterations", err, rep.Iterations)
	}
}

// TestLocalCancelBeforeGather: cancelling during the distributed
// master's initial gather also unblocks cleanly.
func TestLocalCancelBeforeGather(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	l := &Local{Scheme: sched.DTSSScheme{}, Workers: specs(1, 1)}
	_, err := l.RunContext(ctx, workload.Uniform{N: 1000}, func(int) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLocalNoWorkers(t *testing.T) {
	l := &Local{Scheme: sched.GSSScheme{}}
	if _, err := l.Run(workload.Uniform{N: 10}, func(int) {}); err == nil {
		t.Error("no-worker run accepted")
	}
}

func TestLocalEmptyLoop(t *testing.T) {
	l := &Local{Scheme: sched.TSSScheme{}, Workers: specs(1, 1)}
	rep, err := l.Run(workload.Uniform{N: 0}, func(int) {
		t.Error("body ran on empty loop")
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Errorf("iterations = %d", rep.Iterations)
	}
}
