package exec

import "os"

// LedgerMode selects whether eligible runs use the decentralized
// scheduling ledger (internal/ledger): workers claim scheduling steps
// with a fetch-and-add and compute their own chunk boundaries from a
// replicated table, instead of round-tripping every chunk through the
// master's grant path. The mode is a request, not a guarantee — a
// scheme that is not step-deterministic (sched.StepDeterministic)
// silently stays on the master path, so "on" is always safe.
type LedgerMode string

const (
	// LedgerOff keeps every grant on the request/reply master path.
	LedgerOff LedgerMode = "off"
	// LedgerOn claims chunks from the fetch-and-add ledger whenever the
	// scheme is eligible.
	LedgerOn LedgerMode = "on"
)

// LedgerEnv is the environment variable consulted by DefaultLedger,
// letting a test matrix or deployment flip every default-mode run
// without code changes.
const LedgerEnv = "LOOPSCHED_LEDGER"

// DefaultLedger resolves the mode used when none is set explicitly:
// the LOOPSCHED_LEDGER environment variable when it names a known
// mode, otherwise off.
func DefaultLedger() LedgerMode {
	switch LedgerMode(os.Getenv(LedgerEnv)) {
	case LedgerOn:
		return LedgerOn
	case LedgerOff:
		return LedgerOff
	}
	return LedgerOff
}

// Normalize maps the zero value to the environment default and
// reports whether m names a known mode.
func (m LedgerMode) Normalize() (LedgerMode, bool) {
	switch m {
	case "":
		return DefaultLedger(), true
	case LedgerOff, LedgerOn:
		return m, true
	}
	return m, false
}
