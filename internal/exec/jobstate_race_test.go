package exec

import (
	"runtime"
	"sync"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/workload"
)

// TestJobStateLiveCounterReads is the regression test for the plain
// steal.Counters fields the scheduler used to read mid-run: a monitor
// polls Counts and WorkerCounters continuously while workers pop,
// steal, refill and complete. With the old plain-int64 tally this is a
// data race the -race runner reports; with AtomicCounters it must be
// silent, and the post-join snapshot must reconcile with the job's
// grant accounting.
func TestJobStateLiveCounterReads(t *testing.T) {
	const n, p = 20000, 4
	js, err := NewJobState(JobConfig{
		Scheme:   sched.GSSScheme{},
		Workload: workload.Uniform{N: n},
		Workers:  p,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = js.Counts()
			for i := 0; i < p; i++ {
				_ = js.WorkerCounters(i)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !js.Finished() {
				a, ok := js.Pop(w)
				if !ok {
					a, ok = js.Steal(w)
				}
				if !ok {
					a, _, ok = js.Refill(w, 1, 0, 0)
				}
				if !ok {
					// Nothing visible right now; chunks may still sit in
					// other deques until their owners or thieves drain them.
					runtime.Gosched()
					continue
				}
				js.Complete(w, a, 1, 0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monitor.Wait()

	counts := js.Counts()
	if counts.Granted != n || counts.Completed != n {
		t.Fatalf("granted %d, completed %d, want %d each", counts.Granted, counts.Completed, n)
	}
	var pops, steals, refills, refillChunks int64
	for i := 0; i < p; i++ {
		c := js.WorkerCounters(i)
		pops += c.Pops
		steals += c.Steals
		refills += c.Refills
		refillChunks += c.RefillChunks
	}
	if steals != counts.Steals {
		t.Errorf("per-worker steal sum %d, Counts says %d", steals, counts.Steals)
	}
	if got := int(refillChunks); got != counts.Chunks {
		t.Errorf("refill chunk sum %d, policy granted %d chunks", got, counts.Chunks)
	}
	// Every chunk is executed exactly once: as a refill's immediate
	// first chunk, as an owner pop, or as a steal.
	if got := int(pops + steals + refills); got != counts.Chunks {
		t.Errorf("pops %d + steals %d + immediate %d != chunks %d", pops, steals, refills, counts.Chunks)
	}
}
