package exec

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadLoadAvg(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		path := filepath.Join(dir, "loadavg")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if v, ok := readLoadAvg(write("2.37 1.80 1.52 3/456 12345\n")); !ok || v != 2.37 {
		t.Errorf("parse: %v %v", v, ok)
	}
	if _, ok := readLoadAvg(write("")); ok {
		t.Error("empty file accepted")
	}
	if _, ok := readLoadAvg(write("garbage here")); ok {
		t.Error("garbage accepted")
	}
	if _, ok := readLoadAvg(write("-1.0 0 0")); ok {
		t.Error("negative load accepted")
	}
	if _, ok := readLoadAvg(filepath.Join(dir, "missing")); ok {
		t.Error("missing file accepted")
	}
}

func TestOSLoadProbeNeverFails(t *testing.T) {
	probe := OSLoadProbe()
	for i := 0; i < 3; i++ {
		if load := probe(); load < 0 {
			t.Fatalf("negative load %d", load)
		}
	}
}
