package exec

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"loopsched/internal/sched"
)

// startMaster spins up a master on an ephemeral localhost TCP port.
func startMaster(t *testing.T, s sched.Scheme, iterations, workers int) (*Master, string, func()) {
	t.Helper()
	m, err := NewMaster(s, iterations, workers)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve(l); err != nil {
		t.Fatal(err)
	}
	return m, l.Addr().String(), func() { l.Close() }
}

func intKernel(i int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i*i+1))
	return buf[:]
}

func runWorkers(t *testing.T, addr string, workers []Worker) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w Worker) {
			defer wg.Done()
			errs[i] = w.Run(addr)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestRPCEndToEnd runs a real TCP master–worker loop and checks every
// result arrived intact.
func TestRPCEndToEnd(t *testing.T) {
	const n = 500
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
		{ID: 2, Kernel: intKernel, WorkScale: 2},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n || rep.Chunks == 0 {
		t.Errorf("report: %+v", rep)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted: %v", i, r)
		}
	}
}

// TestRPCDistributed runs DTSS over TCP with heterogeneous workers
// reporting real ACPs.
func TestRPCDistributed(t *testing.T) {
	const n = 800
	m, addr, stop := startMaster(t, sched.DTSSScheme{}, n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 3},
		{ID: 1, Kernel: intKernel, VirtualPower: 1, WorkScale: 3},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestRPCPerWorkerTimes: the master's report carries a per-PE
// T_com/T_wait/T_comp breakdown derived from worker-reported
// computation times.
func TestRPCPerWorkerTimes(t *testing.T) {
	const n = 400
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 2)
	defer stop()
	slowKernel := func(i int) []byte {
		// Enough work per iteration to register on the clock.
		h := uint64(i)
		for k := 0; k < 20000; k++ {
			h = h*0x9e3779b97f4a7c15 + 1
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], h)
		return buf[:]
	}
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: slowKernel},
		{ID: 1, Kernel: slowKernel},
	})
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorker) != 2 {
		t.Fatalf("%d worker rows", len(rep.PerWorker))
	}
	for i, tt := range rep.PerWorker {
		if tt.Comp <= 0 {
			t.Errorf("worker %d: no computation time recorded (%+v)", i, tt)
		}
		if tt.Total() > rep.Tp*1.05+1e-3 {
			t.Errorf("worker %d: total %.4f exceeds Tp %.4f", i, tt.Total(), rep.Tp)
		}
	}
}

// TestRPCSchemesAgree: two different schemes must produce bit-identical
// result sets — scheduling may reorder work but never change it.
func TestRPCSchemesAgree(t *testing.T) {
	const n = 300
	run := func(s sched.Scheme) [][]byte {
		m, addr, stop := startMaster(t, s, n, 2)
		defer stop()
		runWorkers(t, addr, []Worker{
			{ID: 0, Kernel: intKernel},
			{ID: 1, Kernel: intKernel},
		})
		results, _, err := m.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a := run(sched.FSSScheme{})
	b := run(sched.NewDFISS(0))
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("schemes disagree at iteration %d", i)
		}
	}
}

// TestRPCLoadedWorker: a LoadProbe shifts work away from the loaded
// machine under a distributed scheme.
func TestRPCLoadedWorker(t *testing.T) {
	const n = 1000
	m, addr, stop := startMaster(t, sched.NewDFSS(), n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 2, LoadProbe: func() int { return 3 }},
		{ID: 1, Kernel: intKernel, VirtualPower: 2},
	})
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(sched.TSSScheme{}, 10, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewMaster(sched.TSSScheme{}, -1, 2); err == nil {
		t.Error("negative iterations accepted")
	}
}

func TestWorkerValidation(t *testing.T) {
	w := Worker{}
	if err := w.Run("127.0.0.1:1"); err == nil {
		t.Error("kernel-less worker accepted")
	}
	w.Kernel = intKernel
	if err := w.Run("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestRPCFailWorkerRequeues: a worker that takes a chunk and dies has
// its chunk re-issued to the survivors; the loop still completes with
// every result present.
func TestRPCFailWorkerRequeues(t *testing.T) {
	const n = 400
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	// Worker 2 grabs one chunk and vanishes.
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Stop || reply.Assign.Size == 0 {
		t.Fatalf("dead worker got no chunk: %+v", reply)
	}
	out := m.Outstanding()
	if a, ok := out[2]; !ok || a != reply.Assign {
		t.Fatalf("outstanding ledger wrong: %v", out)
	}
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if len(m.Outstanding()) != 0 {
		t.Fatalf("failed worker still outstanding: %v", m.Outstanding())
	}
	// FailWorker is idempotent and validates ids.
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(9); err == nil {
		t.Fatal("bad worker id accepted")
	}

	// The survivors finish the whole loop, including the requeued chunk.
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing/corrupted after requeue", i)
		}
	}
}

// TestRPCAllWorkersFail: when every worker dies the run terminates
// (rather than hanging) and Wait reports the missing results.
func TestRPCAllWorkersFail(t *testing.T) {
	m, _, stop := startMaster(t, sched.TSSScheme{}, 100, 2)
	defer stop()
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(1); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Wait() // must not hang
	if err == nil {
		t.Error("missing results not reported")
	}
}

// TestRPCFailDuringGather: a worker dying before reporting its ACP
// must not stall the distributed master's initial barrier.
func TestRPCFailDuringGather(t *testing.T) {
	const n = 200
	m, addr, stop := startMaster(t, sched.DTSSScheme{}, n, 3)
	defer stop()
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 2},
		{ID: 1, Kernel: intKernel, VirtualPower: 1},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestRPCWatchTimeouts: the heartbeat watcher automatically fails a
// silent worker, its chunk is requeued, and the survivors finish.
func TestRPCWatchTimeouts(t *testing.T) {
	const n = 300
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	// Worker 2 takes a chunk and goes silent.
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2}, &reply); err != nil {
		t.Fatal(err)
	}
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go m.WatchTimeouts(5*time.Millisecond, 30*time.Millisecond, stopWatch)

	// Give the watcher time to fire, then run the survivors.
	time.Sleep(80 * time.Millisecond)
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing after timeout recovery", i)
		}
	}
	if lc, err := m.LastContact(0); err != nil || lc.IsZero() {
		t.Errorf("LastContact: %v %v", lc, err)
	}
	if _, err := m.LastContact(9); err == nil {
		t.Error("bad worker id accepted by LastContact")
	}
}

// TestRPCStoppedWorkerNotFailed: gracefully stopped workers are
// ignored by FailWorker, so a slow watcher cannot double-count them.
func TestRPCStoppedWorkerNotFailed(t *testing.T) {
	m, addr, stop := startMaster(t, sched.TSSScheme{}, 50, 2)
	defer stop()
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	if _, _, err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(0); err != nil {
		t.Fatalf("FailWorker after graceful stop: %v", err)
	}
}

// TestRPCBadWorkerID: the master rejects out-of-range worker ids.
func TestRPCBadWorkerID(t *testing.T) {
	m, _, stop := startMaster(t, sched.TSSScheme{}, 10, 1)
	defer stop()
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 5}, &reply); err == nil {
		t.Error("bad worker id accepted")
	}
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: []ChunkResult{{Index: 99}}}, &reply); err == nil {
		t.Error("out-of-range result index accepted")
	}
}
