package exec

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loopsched/internal/sched"
)

// startMaster spins up a master on an ephemeral localhost TCP port.
func startMaster(t *testing.T, s sched.Scheme, iterations, workers int) (*Master, string, func()) {
	t.Helper()
	m, err := NewMaster(s, iterations, workers)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve(l); err != nil {
		t.Fatal(err)
	}
	return m, l.Addr().String(), func() { l.Close() }
}

func intKernel(i int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i*i+1))
	return buf[:]
}

func runWorkers(t *testing.T, addr string, workers []Worker) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w Worker) {
			defer wg.Done()
			errs[i] = w.Run(addr)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

// TestRPCEndToEnd runs a real TCP master–worker loop and checks every
// result arrived intact.
func TestRPCEndToEnd(t *testing.T) {
	const n = 500
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
		{ID: 2, Kernel: intKernel, WorkScale: 2},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n || rep.Chunks == 0 {
		t.Errorf("report: %+v", rep)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted: %v", i, r)
		}
	}
}

// TestRPCDistributed runs DTSS over TCP with heterogeneous workers
// reporting real ACPs.
func TestRPCDistributed(t *testing.T) {
	const n = 800
	m, addr, stop := startMaster(t, sched.DTSSScheme{}, n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 3},
		{ID: 1, Kernel: intKernel, VirtualPower: 1, WorkScale: 3},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestRPCPerWorkerTimes: the master's report carries a per-PE
// T_com/T_wait/T_comp breakdown derived from worker-reported
// computation times.
func TestRPCPerWorkerTimes(t *testing.T) {
	const n = 400
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 2)
	defer stop()
	slowKernel := func(i int) []byte {
		// Enough work per iteration to register on the clock.
		h := uint64(i)
		for k := 0; k < 20000; k++ {
			h = h*0x9e3779b97f4a7c15 + 1
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], h)
		return buf[:]
	}
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: slowKernel},
		{ID: 1, Kernel: slowKernel},
	})
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorker) != 2 {
		t.Fatalf("%d worker rows", len(rep.PerWorker))
	}
	for i, tt := range rep.PerWorker {
		if tt.Comp <= 0 {
			t.Errorf("worker %d: no computation time recorded (%+v)", i, tt)
		}
		if tt.Total() > rep.Tp*1.05+1e-3 {
			t.Errorf("worker %d: total %.4f exceeds Tp %.4f", i, tt.Total(), rep.Tp)
		}
	}
}

// TestRPCSchemesAgree: two different schemes must produce bit-identical
// result sets — scheduling may reorder work but never change it.
func TestRPCSchemesAgree(t *testing.T) {
	const n = 300
	run := func(s sched.Scheme) [][]byte {
		m, addr, stop := startMaster(t, s, n, 2)
		defer stop()
		runWorkers(t, addr, []Worker{
			{ID: 0, Kernel: intKernel},
			{ID: 1, Kernel: intKernel},
		})
		results, _, err := m.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a := run(sched.FSSScheme{})
	b := run(sched.NewDFISS(0))
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("schemes disagree at iteration %d", i)
		}
	}
}

// TestRPCLoadedWorker: a LoadProbe shifts work away from the loaded
// machine under a distributed scheme.
func TestRPCLoadedWorker(t *testing.T) {
	const n = 1000
	m, addr, stop := startMaster(t, sched.NewDFSS(), n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 2, LoadProbe: func() int { return 3 }},
		{ID: 1, Kernel: intKernel, VirtualPower: 2},
	})
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(sched.TSSScheme{}, 10, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewMaster(sched.TSSScheme{}, -1, 2); err == nil {
		t.Error("negative iterations accepted")
	}
}

func TestWorkerValidation(t *testing.T) {
	w := Worker{}
	if err := w.Run("127.0.0.1:1"); err == nil {
		t.Error("kernel-less worker accepted")
	}
	w.Kernel = intKernel
	if err := w.Run("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestRPCFailWorkerRequeues: a worker that takes a chunk and dies has
// its chunk re-issued to the survivors; the loop still completes with
// every result present.
func TestRPCFailWorkerRequeues(t *testing.T) {
	const n = 400
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	// Worker 2 grabs one chunk and vanishes.
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Stop || reply.Assign.Size == 0 {
		t.Fatalf("dead worker got no chunk: %+v", reply)
	}
	out := m.Outstanding()
	if as, ok := out[2]; !ok || len(as) != 1 || as[0] != reply.Assign {
		t.Fatalf("outstanding ledger wrong: %v", out)
	}
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if len(m.Outstanding()) != 0 {
		t.Fatalf("failed worker still outstanding: %v", m.Outstanding())
	}
	// FailWorker is idempotent and validates ids.
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(9); err == nil {
		t.Fatal("bad worker id accepted")
	}

	// The survivors finish the whole loop, including the requeued chunk.
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing/corrupted after requeue", i)
		}
	}
}

// TestRPCAllWorkersFail: when every worker dies the run terminates
// (rather than hanging) and Wait reports the missing results.
func TestRPCAllWorkersFail(t *testing.T) {
	m, _, stop := startMaster(t, sched.TSSScheme{}, 100, 2)
	defer stop()
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(0); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(1); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Wait() // must not hang
	if err == nil {
		t.Error("missing results not reported")
	}
}

// TestRPCFailDuringGather: a worker dying before reporting its ACP
// must not stall the distributed master's initial barrier.
func TestRPCFailDuringGather(t *testing.T) {
	const n = 200
	m, addr, stop := startMaster(t, sched.DTSSScheme{}, n, 3)
	defer stop()
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 2},
		{ID: 1, Kernel: intKernel, VirtualPower: 1},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestRPCWatchTimeouts: the heartbeat watcher automatically fails a
// silent worker, its chunk is requeued, and the survivors finish.
func TestRPCWatchTimeouts(t *testing.T) {
	const n = 300
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	// Worker 2 takes a chunk and goes silent.
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2}, &reply); err != nil {
		t.Fatal(err)
	}
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go m.WatchTimeouts(5*time.Millisecond, 30*time.Millisecond, stopWatch)

	// The survivors run immediately: they drain the policy, then park
	// inside NextChunk (parked workers are immune to the watcher) and
	// absorb worker 2's chunk once the heartbeat deadline requeues it.
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing after timeout recovery", i)
		}
	}
	if lc, err := m.LastContact(0); err != nil || lc.IsZero() {
		t.Errorf("LastContact: %v %v", lc, err)
	}
	if _, err := m.LastContact(9); err == nil {
		t.Error("bad worker id accepted by LastContact")
	}
}

// TestRPCStoppedWorkerNotFailed: gracefully stopped workers are
// ignored by FailWorker, so a slow watcher cannot double-count them.
func TestRPCStoppedWorkerNotFailed(t *testing.T) {
	m, addr, stop := startMaster(t, sched.TSSScheme{}, 50, 2)
	defer stop()
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel},
		{ID: 1, Kernel: intKernel},
	})
	if _, _, err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := m.FailWorker(0); err != nil {
		t.Fatalf("FailWorker after graceful stop: %v", err)
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// countingKernel returns a kernel that counts invocations per index.
func countingKernel(counts []int32) Kernel {
	return func(i int) []byte {
		atomic.AddInt32(&counts[i], 1)
		return intKernel(i)
	}
}

// TestRPCLateFailureRequeued is the lost-iterations race regression:
// a worker that drains the policy is parked inside NextChunk rather
// than stopped while another worker's chunk is still in flight, so a
// late FailWorker finds a live worker to absorb the requeued chunk
// instead of "completing" the run with silently missing results.
func TestRPCLateFailureRequeued(t *testing.T) {
	const n = 300
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 2)
	defer stop()

	// Worker 1 grabs the first chunk and goes silent.
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 1}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Stop || reply.Assign.Size == 0 {
		t.Fatalf("worker 1 got no chunk: %+v", reply)
	}

	// Worker 0 computes everything else, then must wait — not exit.
	errc := make(chan error, 1)
	go func() { errc <- (Worker{ID: 0, Kernel: intKernel}).Run(addr) }()
	waitUntil(t, func() bool { return m.Parked() == 1 })

	// Only now does worker 1 die; its chunk must reach worker 0.
	if err := m.FailWorker(1); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("worker 0: %v", err)
	}
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatalf("run lost iterations: %v", err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing after late failure", i)
		}
	}
}

// TestRPCResurrectedWorkerStopped is the resurrected-worker race
// regression: a worker declared dead that was merely slow gets Stop on
// its next call (no more chunks, no double counting), and the results
// it piggy-backs are banked so its requeued chunk is not recomputed.
func TestRPCResurrectedWorkerStopped(t *testing.T) {
	const n = 200
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 2)
	defer stop()

	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 1}, &reply); err != nil {
		t.Fatal(err)
	}
	a := reply.Assign
	if err := m.FailWorker(1); err != nil {
		t.Fatal(err)
	}

	// The "dead" worker reports back with its chunk's results.
	res := make([]ChunkResult, 0, a.Size)
	for i := a.Start; i < a.End(); i++ {
		res = append(res, ChunkResult{Index: i, Data: intKernel(i)})
	}
	var again ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 1, Results: res}, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Stop {
		t.Fatalf("resurrected worker handed more work: %+v", again)
	}

	// The survivor must not recompute the delivered chunk.
	counts := make([]int32, n)
	runWorkers(t, addr, []Worker{{ID: 0, Kernel: countingKernel(counts)}})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
		c := atomic.LoadInt32(&counts[i])
		if i >= a.Start && i < a.End() {
			if c != 0 {
				t.Errorf("delivered iteration %d recomputed %d times", i, c)
			}
		} else if c != 1 {
			t.Errorf("iteration %d computed %d times, want 1", i, c)
		}
	}
}

// TestRPCPipelinedWorkers: the double-buffered protocol computes every
// iteration exactly once and loses nothing.
func TestRPCPipelinedWorkers(t *testing.T) {
	const n = 500
	m, addr, stop := startMaster(t, sched.TSSScheme{}, n, 3)
	defer stop()

	counts := make([]int32, n)
	k := countingKernel(counts)
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: k, Pipeline: true},
		{ID: 1, Kernel: k, Pipeline: true},
		{ID: 2, Kernel: k, Pipeline: true},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n || rep.Chunks == 0 {
		t.Errorf("report: %+v", rep)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted: %v", i, r)
		}
		if c := atomic.LoadInt32(&counts[i]); c != 1 {
			t.Errorf("iteration %d computed %d times, want 1", i, c)
		}
	}
}

// TestRPCPipelinedDistributed: pipelined workers pass the distributed
// gather barrier (the first, synchronous request joins it) and the
// run balances with real ACPs.
func TestRPCPipelinedDistributed(t *testing.T) {
	const n = 600
	m, addr, stop := startMaster(t, sched.DTSSScheme{}, n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, VirtualPower: 3, Pipeline: true},
		{ID: 1, Kernel: intKernel, VirtualPower: 1, WorkScale: 3, Pipeline: true},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestRPCPipelinedFailWorker: a pipelined worker dies holding two
// outstanding chunks (computing + prefetched); both are requeued, the
// third slot is refused, and the survivors compute everything exactly
// once.
func TestRPCPipelinedFailWorker(t *testing.T) {
	const n = 400
	m, addr, stop := startMaster(t, sched.FSSScheme{}, n, 3)
	defer stop()

	// Worker 2 double-buffers two chunks into flight…
	var r1, r2 ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2}, &r1); err != nil {
		t.Fatal(err)
	}
	if err := m.NextChunk(ChunkArgs{Worker: 2, Prefetch: true}, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Stop || r1.Assign.Size == 0 || r2.Stop || r2.Assign.Size == 0 {
		t.Fatalf("no double buffer: %+v %+v", r1, r2)
	}
	out := m.Outstanding()
	if len(out[2]) != 2 {
		t.Fatalf("outstanding ledger: %v", out)
	}
	// …a third prefetch is refused (two-slot cap)…
	var r3 ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 2, Prefetch: true}, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Stop || r3.Assign.Size != 0 {
		t.Fatalf("two-slot cap not enforced: %+v", r3)
	}
	// …and dies. Both chunks must be requeued.
	if err := m.FailWorker(2); err != nil {
		t.Fatal(err)
	}
	if len(m.Outstanding()) != 0 {
		t.Fatalf("failed worker still outstanding: %v", m.Outstanding())
	}

	counts := make([]int32, n)
	k := countingKernel(counts)
	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: k, Pipeline: true},
		{ID: 1, Kernel: k, Pipeline: true},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d missing/corrupted after requeue", i)
		}
		if c := atomic.LoadInt32(&counts[i]); c != 1 {
			t.Errorf("iteration %d computed %d times, want 1", i, c)
		}
	}
}

// TestRPCCommGapZeroComp: the T_comm gap is charged even when the
// previous chunk's measured computation time rounds to zero (the old
// CompSeconds > 0 guard silently dropped it).
func TestRPCCommGapZeroComp(t *testing.T) {
	const n = 4
	m, _, stop := startMaster(t, sched.CSSScheme{K: 2}, n, 1)
	defer stop()

	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0}, &reply); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	deliver := func(a sched.Assignment) []ChunkResult {
		res := make([]ChunkResult, 0, a.Size)
		for i := a.Start; i < a.End(); i++ {
			res = append(res, ChunkResult{Index: i, Data: intKernel(i)})
		}
		return res
	}
	// Zero-duration chunk: CompSeconds stays 0.
	var r2 ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: deliver(reply.Assign)}, &r2); err != nil {
		t.Fatal(err)
	}
	var r3 ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: deliver(r2.Assign)}, &r3); err != nil {
		t.Fatal(err)
	}
	if !r3.Stop {
		t.Fatalf("run not complete: %+v", r3)
	}
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerWorker[0].Comm < 0.015 {
		t.Errorf("Comm = %.4fs, want ≥ 0.015s (zero-comp gap dropped)", rep.PerWorker[0].Comm)
	}
}

// TestRPCLastReplyNotStampedOnError: an errored NextChunk produces no
// reply the worker can see, so it must not reset the communication-gap
// clock.
func TestRPCLastReplyNotStampedOnError(t *testing.T) {
	const n = 2
	m, _, stop := startMaster(t, sched.CSSScheme{K: 2}, n, 1)
	defer stop()

	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0}, &reply); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// A malformed call fails — and must not be counted as a reply.
	var bad ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: []ChunkResult{{Index: 99}}}, &bad); err == nil {
		t.Fatal("out-of-range result index accepted")
	}
	res := []ChunkResult{
		{Index: 0, Data: intKernel(0)},
		{Index: 1, Data: intKernel(1)},
	}
	var final ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: res}, &final); err != nil {
		t.Fatal(err)
	}
	if !final.Stop {
		t.Fatalf("run not complete: %+v", final)
	}
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// The gap spans from the first (successful) reply, not from the
	// errored call: ≥ the 30ms sleep.
	if rep.PerWorker[0].Comm < 0.02 {
		t.Errorf("Comm = %.4fs, want ≥ 0.02s (gap clock reset by errored call)", rep.PerWorker[0].Comm)
	}
}

// TestRPCBadWorkerID: the master rejects out-of-range worker ids.
func TestRPCBadWorkerID(t *testing.T) {
	m, _, stop := startMaster(t, sched.TSSScheme{}, 10, 1)
	defer stop()
	var reply ChunkReply
	if err := m.NextChunk(ChunkArgs{Worker: 5}, &reply); err == nil {
		t.Error("bad worker id accepted")
	}
	if err := m.NextChunk(ChunkArgs{Worker: 0, Results: []ChunkResult{{Index: 99}}}, &reply); err == nil {
		t.Error("out-of-range result index accepted")
	}
}
