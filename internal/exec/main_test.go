package exec

import (
	"os"
	"testing"

	"loopsched/internal/leakcheck"
)

// TestMain fails the binary if any goroutine started by the runtime —
// accept loops, ServeConn servers, worker pipelines, timeout watchers
// — survives the tests. Complements the static gojoin analyzer: the
// joins it proves exist must also fire.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
