package exec

import (
	"bufio"
	"context"
	"net"
	"net/rpc"
	"time"

	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/wire"
)

// This file is the binary-transport half of the chunk protocol: the
// sniffing connection router shared by the flat master and the
// hierarchical submasters, the server-side frame loop, and the worker
// loops that speak internal/wire instead of net/rpc.

// BatchFunc answers one batched chunk request: deposit args.Results,
// then append up to `credits` grants (or a stop/park verdict) into
// rep. exec.Master.nextBatch and the hierarchical submaster both
// implement it.
type BatchFunc func(args ChunkArgs, credits int, rep *wire.Reply) error

// FetchAddFunc answers one ledger claim: atomically reserve n
// scheduling steps and return the first reserved step. worker is the
// claimer's id when the connection has been labeled by a prior
// request, else -1. A nil FetchAddFunc means the ledger is not active
// and fetchadd frames drop the connection.
type FetchAddFunc func(worker, n int) uint64

// ledgerClaimFactor is how many credit windows one ledger claim
// reserves. Master-path credits pay per grant (reply encoding, result
// ingest, requeue bookkeeping), so the window stays small; a one-sided
// claim is a constant-size frame whose boundaries the table fixes at
// any batch size, so it amortises the counter round trip over several
// windows. See docs/LEDGER.md for the tail-waste tradeoff.
const ledgerClaimFactor = 4

// sniffedConn replays the bytes a protocol sniffer buffered ahead of
// the gob stream.
type sniffedConn struct {
	net.Conn
	r *bufio.Reader
}

func (c sniffedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// ServeSniffed serves one accepted connection, routing by its first
// byte: the binary wire preamble (wire.Magic, which no gob stream can
// open with) goes to the framed batch service, everything else to the
// net/rpc server. It returns when the dialogue ends and closes the
// connection. bus (nil allowed) receives wire frame counters; shard
// labels them.
func ServeSniffed(srv *rpc.Server, conn net.Conn, bus *telemetry.Bus, shard int, batch BatchFunc, fetch FetchAddFunc) {
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		conn.Close()
		return
	}
	if first[0] != wire.Magic {
		srv.ServeConn(sniffedConn{Conn: conn, r: br})
		return
	}
	if err := wire.ConsumePreamble(br); err != nil {
		conn.Close()
		return
	}
	defer conn.Close()
	serveWire(wire.NewServer(conn, br), bus, shard, batch, fetch)
}

// serveWire runs the framed loop for one worker connection until the
// stream closes, a frame fails to parse, or a stop reply to a
// synchronous request completes the dialogue. Three client frame
// shapes interleave on one connection: synchronous and prefetch
// requests (answered with a reply), no-reply deposits (results filed,
// nothing written back), and — when fetch is non-nil — ledger claims
// (answered with a step frame).
func serveWire(c *wire.Conn, bus *telemetry.Bus, shard int, batch BatchFunc, fetch FetchAddFunc) {
	c.SetTelemetry(bus, -1, shard)
	var (
		req     wire.Request
		rep     wire.Reply
		results []ChunkResult
		labeled bool
		worker  = -1
	)
	for {
		kind, n, err := c.ReadClientFrame(&req)
		if err != nil {
			return // closed, cancelled or corrupt: drop the dialogue
		}
		if kind == wire.KindFetchAdd {
			if fetch == nil {
				// No ledger on this master: a claim is unanswerable, and
				// leaving it unanswered would deadlock the worker.
				return
			}
			if err := c.WriteStep(fetch(worker, n)); err != nil {
				return
			}
			continue
		}
		if !labeled {
			c.SetTelemetry(bus, req.Worker, shard)
			labeled = true
			worker = req.Worker
		}
		results = results[:0]
		for i, r := range req.Results {
			// Record data aliases the connection's read buffer; the
			// master keeps results for the whole run, so copy here.
			cr := ChunkResult{
				Index: r.Index,
				Data:  append([]byte(nil), r.Data...),
			}
			if i < len(req.Spans) {
				cr.Span = req.Spans[i]
			}
			results = append(results, cr)
		}
		args := ChunkArgs{
			Worker:      req.Worker,
			ACP:         req.ACP,
			CompSeconds: req.CompSeconds,
			IdleSeconds: req.IdleSeconds,
			Results:     results,
			Prefetch:    req.Prefetch,
			DepositOnly: req.NoReply,
		}
		rep.Reset()
		if req.NoReply {
			// Deposit-only: the client will not read a reply, so an
			// error has nowhere to ride — treat it as terminal.
			if err := batch(args, 0, &rep); err != nil {
				return
			}
			continue
		}
		stop := false
		if err := batch(args, req.Credits, &rep); err != nil {
			// Mirror net/rpc: the error rides back to the caller, the
			// connection stays up for the next request.
			rep.Reset()
			rep.Err = err.Error()
		} else {
			stop = rep.Stop && !req.Prefetch
		}
		if err := c.WriteReply(&rep); err != nil {
			return
		}
		if stop {
			// A stop on a synchronous request is final: the worker had
			// nothing pending, so the dialogue is complete.
			return
		}
	}
}

// runWire drives the binary protocol over conn until stopped.
func (w Worker) runWire(ctx context.Context, conn net.Conn) error {
	c, err := wire.NewClient(conn)
	if err != nil {
		conn.Close()
		return err
	}
	defer c.Close()
	c.SetTelemetry(w.Telemetry, w.TelemetryID, w.TelemetryShard)
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-watchDone:
		}
	}()
	if w.LedgerTable != nil {
		return w.runWireLedger(c)
	}
	if w.Pipeline {
		return w.runWirePipelined(c)
	}
	return w.runWireSerial(c)
}

// toRecords converts kernel results into wire records, reusing dst's
// capacity so the steady-state loop allocates nothing.
func toRecords(dst []wire.Record, results []ChunkResult) []wire.Record {
	dst = dst[:0]
	for _, r := range results {
		dst = append(dst, wire.Record{Index: r.Index, Data: r.Data})
	}
	return dst
}

// echoSpans rebuilds the per-record span echo for a request, reusing
// dst's capacity. The codec requires the span block to be empty or
// match the record count, so callers attach it only once the master
// has shown it is span-tagging grants.
func echoSpans(dst []uint64, results []ChunkResult) []uint64 {
	dst = dst[:0]
	for _, r := range results {
		dst = append(dst, r.Span)
	}
	return dst
}

// grantSpan is the trace span of grant i in the reply: the id the
// master stamped when it is span-tagging, else the deterministic local
// id — so an in-process bus still pairs grants with completions when
// the transport carries no spans (e.g. a bus-less master).
func grantSpan(rep *wire.Reply, i int, a sched.Assignment) uint64 {
	if i < len(rep.Spans) {
		return rep.Spans[i]
	}
	return telemetry.SpanID(0, a.Start)
}

// wireRequest fills req from the worker's current state and returns
// the ACP it reported. spans, when non-nil, is the per-record span
// echo.
func (w Worker) wireRequest(req *wire.Request, prefetch bool, credits int, records []wire.Record, spans []uint64, comp, idle float64) int {
	load := 0
	if w.LoadProbe != nil {
		load = w.LoadProbe()
	}
	acpv := w.ACPModel.ACP(w.power(), 1+load)
	*req = wire.Request{
		Worker:      w.ID,
		ACP:         acpv,
		CompSeconds: comp,
		IdleSeconds: idle,
		Prefetch:    prefetch,
		Credits:     credits,
		Results:     records,
		Spans:       spans,
	}
	return acpv
}

// runWireSerial is the paper's slave loop on the binary transport:
// one synchronous round trip fetches up to a window of grants, the
// worker computes them all, and the results ride on the next request.
func (w Worker) runWireSerial(c *wire.Conn) error {
	var (
		req     wire.Request
		rep     wire.Reply
		results []ChunkResult
		records []wire.Record
		spans   []uint64
		comp    float64
		echo    bool
	)
	for {
		records = toRecords(records, results)
		var reqSpans []uint64
		if echo {
			spans = echoSpans(spans, results)
			reqSpans = spans
		}
		acpv := w.wireRequest(&req, false, w.window(), records, reqSpans, comp, 0)
		if err := c.Call(&req, &rep); err != nil {
			return err
		}
		if rep.Stop {
			return nil
		}
		echo = echo || len(rep.Spans) > 0
		results = results[:0]
		comp = 0
		for i, a := range rep.Grants {
			span := grantSpan(&rep, i, a)
			start := time.Now()
			rs := w.compute(a)
			chunkComp := time.Since(start).Seconds()
			comp += chunkComp
			w.publishCompleted(a, span, acpv, chunkComp)
			for j := range rs {
				rs[j].Span = span
			}
			results = append(results, rs...)
		}
	}
}

// runWirePipelined is the credit-window loop: the worker keeps up to
// `window` granted chunks queued beyond the one it is computing, and
// whenever the queue drops below the refill mark it ships every
// pending result and asks for the missing credits in one frame that
// is written before the kernel runs and collected after — so both the
// upload and the grant latency hide behind computation, and with a
// window of W one round trip pays for roughly W/2 chunks.
func (w Worker) runWirePipelined(c *wire.Conn) error {
	var (
		req        wire.Request
		rep        wire.Reply
		queue      []sched.Assignment
		spanQueue  []uint64 // parallel to queue: one span per grant
		pending    []ChunkResult
		records    []wire.Record
		spans      []uint64
		comp, idle float64
		stopSeen   bool
		echo       bool
		lastACP    int
	)
	window := w.window()
	ledger := window + 1
	refillAt := (window + 1) / 2
	if refillAt < 1 {
		refillAt = 1
	}
	absorb := func() {
		if rep.Stop {
			stopSeen = true
		}
		echo = echo || len(rep.Spans) > 0
		for i, g := range rep.Grants {
			queue = append(queue, g)
			spanQueue = append(spanQueue, grantSpan(&rep, i, g))
		}
	}
	ship := func() []uint64 {
		records = toRecords(records, pending)
		if !echo {
			return nil
		}
		spans = echoSpans(spans, pending)
		return spans
	}
	for {
		if len(queue) == 0 {
			if stopSeen && len(pending) == 0 {
				return nil
			}
			// Synchronous (re)fill: ships everything pending and may
			// park at the master until work or the end of the run.
			reqSpans := ship()
			lastACP = w.wireRequest(&req, false, ledger, records, reqSpans, comp, idle)
			if err := c.Call(&req, &rep); err != nil {
				return err
			}
			pending, comp, idle = pending[:0], 0, 0
			absorb()
			if rep.Stop {
				return nil // a sync request ships everything, so this is final
			}
			continue
		}
		a, span := queue[0], spanQueue[0]
		queue, spanQueue = queue[1:], spanQueue[1:]
		inflight := false
		if !stopSeen && len(queue) < refillAt {
			// Refill the credit window (shipping pending results) while
			// the kernel runs; the reply is collected after the chunk.
			credits := ledger - len(queue) - 1
			if credits < 1 {
				credits = 1
			}
			reqSpans := ship()
			lastACP = w.wireRequest(&req, true, credits, records, reqSpans, comp, idle)
			if err := c.WriteRequest(&req); err != nil {
				return err
			}
			pending, comp, idle = pending[:0], 0, 0
			inflight = true
		}
		start := time.Now()
		results := w.compute(a)
		chunkComp := time.Since(start).Seconds()
		comp += chunkComp
		w.publishCompleted(a, span, lastACP, chunkComp)
		for j := range results {
			results[j].Span = span
		}
		if inflight {
			waitStart := time.Now()
			if err := c.ReadReply(&rep); err != nil {
				return err
			}
			idle += time.Since(waitStart).Seconds() // prefetch-miss stall
			if rep.Err != "" {
				return wire.ServerError(rep.Err)
			}
			absorb()
		}
		pending = append(pending, results...)
	}
}

// runWireLedger is the one-sided claim loop: instead of asking the
// master which chunk to run, the worker fetch-adds a batch of
// scheduling steps on the master's ledger and computes the chunk
// boundaries itself from its table replica — the master only ever
// sees an 11-byte claim and answers with an 11-byte step, so the
// grant path carries no policy lock, no result copying and no reply
// encoding. Completions ride no-reply deposits written while the next
// claim is in flight. When the table drains the loop falls back to the
// synchronous master dialogue, which ships the final results, absorbs
// any chunks the master requeued from failed workers, and ends on the
// master's stop verdict.
func (w Worker) runWireLedger(c *wire.Conn) error {
	tab := w.LedgerTable
	var (
		req     wire.Request
		rep     wire.Reply
		queue   []sched.Assignment
		pending []ChunkResult
		records []wire.Record

		comp, idle float64
		lastACP    int
	)
	// A one-sided claim costs the same few bytes whatever it claims, it
	// cannot be requeued on failure anyway, and the table fixes the
	// boundaries at any batch size — so unlike master-path credits,
	// whose reply and requeue cost grow with the window, the claim
	// batch can run deeper than the window for free. Four windows per
	// fetch-add quarters the round trips per chunk; the tail waste is
	// at most one batch of the scheme's final (smallest) chunks.
	claimN := ledgerClaimFactor * w.window()
	// Hello deposit: fetchadd frames carry no worker id, so an empty
	// no-reply request labels the connection (and joins the fleet)
	// before the first one-sided claim. Queued, not flushed: it rides
	// the first claim's segment.
	lastACP = w.wireRequest(&req, true, 0, nil, nil, 0, 0)
	req.NoReply = true
	if err := c.QueueRequest(&req); err != nil {
		return err
	}
	// run computes one chunk and queues its completion deposit —
	// unflushed, so it rides the next claim's segment. One deposit per
	// chunk (not per claim batch) keeps the master's per-chunk
	// accounting exact: each deposit carries exactly that chunk's
	// results and compute time, so the completion-latency histogram
	// still counts one sample per chunk however deep the claim batch
	// runs. The extra frames share one flush, so the round still costs
	// one write and one read.
	run := func(a sched.Assignment) error {
		span := telemetry.SpanID(0, a.Start)
		start := time.Now()
		rs := w.compute(a)
		chunkComp := time.Since(start).Seconds()
		w.publishCompleted(a, span, lastACP, chunkComp)
		for j := range rs {
			rs[j].Span = span
		}
		records = toRecords(records, rs)
		lastACP = w.wireRequest(&req, true, 0, records, nil, chunkComp, idle)
		req.NoReply = true
		idle = 0
		return c.QueueRequest(&req)
	}
	// Two claims stay in flight (the ledger's double buffer): while
	// this round computes the chunks of claim k-1 and waits for claim
	// k's step, claim k+1 is already travelling, so the wire never goes
	// quiet between batches. Step replies come back in claim order;
	// starts is the matching FIFO of send times for the RTT metric. The
	// one extra in-flight claim wastes at most claimN steps past the
	// table's end, which the claim-then-check protocol absorbs.
	var (
		starts     [2]time.Time
		sent, read int
	)
	sendClaim := func() error {
		starts[sent&1] = time.Now()
		sent++
		return c.WriteFetchAdd(claimN)
	}
	readClaim := func() (uint64, error) {
		waitStart := time.Now()
		step, err := c.ReadStep()
		if err != nil {
			return 0, err
		}
		idle += time.Since(waitStart).Seconds()
		if w.Telemetry != nil {
			w.Telemetry.Publish(telemetry.Event{
				Kind: telemetry.LedgerFetch, Worker: w.TelemetryID, Shard: w.TelemetryShard,
				Start: claimN, At: w.Telemetry.Now(),
				Seconds: time.Since(starts[read&1]).Seconds(),
			})
		}
		read++
		return step, nil
	}
	if err := sendClaim(); err != nil {
		return err
	}
	drained := false
	for !drained {
		// The claim's flush ships the deposits run queued last round in
		// the same segment: a steady-state round costs the worker one
		// write and one read, exactly like the master path's piggybacked
		// request.
		if err := sendClaim(); err != nil {
			return err
		}
		for _, a := range queue {
			if err := run(a); err != nil {
				return err
			}
		}
		queue = queue[:0]
		step, err := readClaim()
		if err != nil {
			return err
		}
		for i := 0; i < claimN; i++ {
			a, ok := tab.Chunk(step + uint64(i))
			if !ok {
				drained = true // steps past the end: the loop is fully claimed
				break
			}
			queue = append(queue, a)
		}
	}
	for _, a := range queue {
		if err := run(a); err != nil {
			return err
		}
	}
	// Drain the reply of the still-outstanding claim; its steps are at
	// or past the table's end, so they grant nothing.
	for read < sent {
		if _, err := readClaim(); err != nil {
			return err
		}
	}
	// The ledger is dry; finish on the synchronous master path, which
	// hands out requeued chunks (if any) and owns the stop decision.
	for {
		records = toRecords(records, pending)
		acpv := w.wireRequest(&req, false, w.window(), records, nil, comp, idle)
		if err := c.Call(&req, &rep); err != nil {
			return err
		}
		if rep.Stop {
			return nil
		}
		pending, comp, idle = pending[:0], 0, 0
		for i, a := range rep.Grants {
			span := grantSpan(&rep, i, a)
			start := time.Now()
			rs := w.compute(a)
			chunkComp := time.Since(start).Seconds()
			comp += chunkComp
			w.publishCompleted(a, span, acpv, chunkComp)
			for j := range rs {
				rs[j].Span = span
			}
			pending = append(pending, rs...)
		}
	}
}
