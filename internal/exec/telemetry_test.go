package exec

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// TestRPCTelemetrySession attaches a full telemetry session — bus,
// aggregator, and live debug HTTP server — to a TCP master–worker run
// and checks the aggregated counters reconcile with the master's
// report. The package's leak-checked TestMain verifies that closing the
// session tears the debug server and drainer down alongside the
// master's own Shutdown path.
func TestRPCTelemetrySession(t *testing.T) {
	tele, err := telemetry.New(telemetry.Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	const n = 600
	m, addr, stop := startMaster(t, sched.GSSScheme{}, n, 2)
	defer stop()
	m.SetTelemetry(tele.Bus())

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, Telemetry: tele.Bus(), TelemetryID: 0},
		{ID: 1, Kernel: intKernel, Telemetry: tele.Bus(), TelemetryID: 1, WorkScale: 2},
	})
	_, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	tele.Bus().Flush()

	snap := tele.Aggregator().Snapshot()
	if int(snap.ChunksGranted) != rep.Chunks {
		t.Errorf("snapshot chunks granted %d, report says %d", snap.ChunksGranted, rep.Chunks)
	}
	if int(snap.Iterations) != n {
		t.Errorf("snapshot iterations %d, want %d", snap.Iterations, n)
	}
	if snap.Dropped != 0 {
		t.Errorf("%d events dropped", snap.Dropped)
	}

	// The debug server is live for the duration of the run.
	resp, err := http.Get("http://" + tele.DebugAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "loopsched_chunks_granted_total") {
		t.Errorf("/metrics missing grant counter:\n%s", body)
	}

	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}
}
