package exec

import "os"

// Transport selects the wire format a worker (or a submaster's root
// client) speaks to the master. The master itself needs no selection:
// Serve sniffs the first byte of every connection — binary clients
// open with the wire preamble (0xA7), gob streams cannot — so one
// listener serves both protocols at once.
type Transport string

const (
	// TransportBinary is the length-prefixed binary framing codec of
	// internal/wire: no reflection, pooled buffers, batched grants.
	TransportBinary Transport = "binary"
	// TransportNetRPC is the original net/rpc + gob protocol, kept as
	// a fallback and as the cross-version escape hatch.
	TransportNetRPC Transport = "netrpc"
)

// TransportEnv is the environment variable consulted by
// DefaultTransport, letting a test matrix or deployment flip every
// default-transport client without code changes.
const TransportEnv = "LOOPSCHED_TRANSPORT"

// DefaultTransport resolves the transport used when none is set
// explicitly: the LOOPSCHED_TRANSPORT environment variable when it
// names a known transport, otherwise the binary codec.
func DefaultTransport() Transport {
	switch Transport(os.Getenv(TransportEnv)) {
	case TransportNetRPC:
		return TransportNetRPC
	case TransportBinary:
		return TransportBinary
	}
	return TransportBinary
}

// Normalize maps the zero value to the environment default and
// reports whether t names a known transport.
func (t Transport) Normalize() (Transport, bool) {
	switch t {
	case "":
		return DefaultTransport(), true
	case TransportBinary, TransportNetRPC:
		return t, true
	}
	return t, false
}
