package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"loopsched/internal/acp"
	"loopsched/internal/ledger"
	"loopsched/internal/sched"
	"loopsched/internal/steal"
	"loopsched/internal/telemetry"
	"loopsched/internal/telemetry/hist"
	"loopsched/internal/workload"
)

// JobConfig configures one fleet-schedulable job for NewJobState.
type JobConfig struct {
	// Scheme is the self-scheduling scheme the job's chunks come from.
	Scheme sched.Scheme
	// Workload is the job's loop.
	Workload workload.Workload
	// Workers is the fleet size p: the job gets one deque per worker.
	Workers int
	// Window is the refill batch size (DefaultStealWindow when <= 0).
	Window int
	// InitACP seeds the per-worker ACP figures distributed schemes
	// plan with (the paper's step 1(a) gather). nil means every
	// worker reports ACP 1 until its first refill.
	InitACP []int
	// DisableReplan turns off the majority re-plan.
	DisableReplan bool
	// Telemetry receives the job's chunk events; nil is inert.
	Telemetry *telemetry.Bus
	// Job and Tenant tag every event the job publishes, so a shared
	// bus can attribute chunks per job and per tenant. Zero means
	// untagged (single-run execution).
	Job, Tenant int
	// Ledger requests the scheduling-step ledger for refills: when the
	// scheme is step-deterministic, a refill becomes one fetch-and-add
	// on an atomic step counter plus table lookups — no refill mutex at
	// all. Empty uses DefaultLedger (the LOOPSCHED_LEDGER environment
	// variable); ineligible schemes silently keep the policy path.
	Ledger LedgerMode
}

// JobCounts is a point-in-time snapshot of a job's chunk accounting.
type JobCounts struct {
	Chunks    int   // chunks granted by the policy
	Replans   int   // majority re-plans taken
	Granted   int64 // iterations granted
	Completed int64 // iterations executed
	Steals    int64 // chunks moved between workers
}

// JobState is the fleet-shareable core of the work-stealing engine:
// one job's per-worker deques plus everything a master would keep
// private — the scheme policy, live/plan ACP, grant accounting —
// guarded by one amortised refill mutex. A single JobState backs a
// whole stealRun; a scheduler keeps many JobStates alive at once on
// one worker fleet, each worker holding one deque per job.
//
// Termination is masterless: drained flips when the policy runs dry
// (it can never un-dry — a re-plan covers only the remaining
// iterations, which is zero by then), after which granted is frozen;
// the job is finished once drained && completed == granted, i.e.
// every granted iteration has been executed by somebody.
type JobState struct {
	scheme        sched.Scheme
	w             workload.Workload
	dist          bool
	p             int
	disableReplan bool
	bus           *telemetry.Bus
	job, tenant   int

	deques   []*steal.Deque
	counters []steal.AtomicCounters
	scratch  [][]sched.Assignment // per-worker refill buffers
	compHist *hist.Sharded        // per-chunk compute latency

	waitHist *hist.Sharded // request-to-grant latency (shard = worker)

	// Scheduling-step ledger (JobConfig.Ledger): when armed, Refill
	// bypasses s.mu entirely — one fetch-and-add claims a window of
	// steps and the table maps each to its chunk. nil keeps the policy
	// path. ledgerChunks is the ledger's share of the chunk tally,
	// folded into Counts alongside the mu-guarded chunks.
	ledgerTab    *ledger.Table
	ledgerCtr    ledger.Local
	ledgerChunks atomic.Int64

	granted   atomic.Int64
	completed atomic.Int64
	drained   atomic.Bool
	aborted   atomic.Bool

	mu      sync.Mutex // guards everything below
	policy  sched.Policy
	liveACP []int
	planACP []int
	base    int
	chunks  int
	replans int
}

// NewJobState plans the job's first policy and allocates its deques.
func NewJobState(cfg JobConfig) (*JobState, error) {
	p := cfg.Workers
	window := cfg.Window
	if window <= 0 {
		window = DefaultStealWindow
	}
	s := &JobState{
		scheme:        cfg.Scheme,
		w:             cfg.Workload,
		dist:          sched.Distributed(cfg.Scheme),
		p:             p,
		disableReplan: cfg.DisableReplan,
		bus:           cfg.Telemetry,
		job:           cfg.Job,
		tenant:        cfg.Tenant,
		deques:        make([]*steal.Deque, p),
		counters:      make([]steal.AtomicCounters, p),
		scratch:       make([][]sched.Assignment, p),
		compHist:      hist.NewSharded(p),
		waitHist:      hist.NewSharded(p),
		liveACP:       make([]int, p),
		planACP:       make([]int, p),
	}
	for i := 0; i < p; i++ {
		s.deques[i] = steal.NewDeque(window)
		s.scratch[i] = make([]sched.Assignment, 0, window)
	}
	if s.dist {
		for i := 0; i < p; i++ {
			a := 1
			if i < len(cfg.InitACP) {
				a = cfg.InitACP[i]
			}
			s.liveACP[i] = a
		}
	}
	var err error
	s.policy, err = s.plan()
	if err != nil {
		return nil, err
	}
	mode, ok := cfg.Ledger.Normalize()
	if !ok {
		return nil, fmt.Errorf("exec: unknown ledger mode %q", cfg.Ledger)
	}
	if mode == LedgerOn {
		// Advisory: a build failure (ineligible scheme, over-long loop)
		// keeps the policy path, so "on" is always safe.
		if tab, err := ledger.Build(cfg.Scheme, sched.Config{Iterations: cfg.Workload.Len(), Workers: p}); err == nil {
			s.ledgerTab = tab
		}
	}
	return s, nil
}

// Workload returns the job's loop (for feedback cost lookups).
func (s *JobState) Workload() workload.Workload { return s.w }

// plan builds a policy over the remaining iterations, offset past what
// has already been granted. Caller holds s.mu (or is pre-spawn).
func (s *JobState) plan() (sched.Policy, error) {
	cfg := sched.Config{Iterations: s.w.Len() - s.base, Workers: s.p}
	if s.dist {
		powers := make([]float64, s.p)
		for i, a := range s.liveACP {
			if a < 1 {
				a = 1
			}
			powers[i] = float64(a)
		}
		cfg.Powers = powers
	}
	pol, err := s.scheme.NewPolicy(cfg)
	if err != nil {
		return nil, err
	}
	copy(s.planACP, s.liveACP)
	return sched.Offset(pol, s.base), nil
}

// event returns an Event pre-tagged with the job's identity.
//
//lint:loopsched-hotpath
func (s *JobState) event(kind telemetry.Kind, worker int) telemetry.Event {
	return telemetry.Event{
		Kind: kind, Worker: worker,
		Job: s.job, Tenant: s.tenant,
	}
}

// Pop takes the newest chunk from the worker's own deque for this job.
//
//lint:loopsched-hotpath
func (s *JobState) Pop(worker int) (sched.Assignment, bool) {
	a, ok := s.deques[worker].Pop()
	if ok {
		s.counters[worker].Pops.Add(1)
	}
	return a, ok
}

// Steal scans the other workers' deques starting just past the thief,
// taking the first (oldest) chunk it finds.
//
//lint:loopsched-hotpath
func (s *JobState) Steal(thief int) (sched.Assignment, bool) {
	c := &s.counters[thief]
	for off := 1; off < s.p; off++ {
		victim := (thief + off) % s.p
		if a, ok := s.deques[victim].Steal(); ok {
			c.Steals.Add(1)
			e := s.event(telemetry.ChunkStolen, thief)
			e.Shard = victim
			e.Start, e.Size = a.Start, a.Size
			e.At = s.bus.Now()
			s.bus.Publish(e)
			return a, true
		}
	}
	c.FailedSteals.Add(1)
	return sched.Assignment{}, false
}

// Refill is the steal engine's stand-in for one master round-trip: it
// reports the worker's current ACP, applies any pending feedback,
// re-plans on majority ACP change, and pulls up to a window of chunks
// from the policy. The first chunk is returned for immediate
// execution; the rest land in the worker's (empty — refill only runs
// after its own pop failed, and thieves never add) deque for this job.
// The int result is the number of iterations granted by this refill,
// which a fair-share arbiter charges against the job's credit budget.
func (s *JobState) Refill(worker, acpNow int, fbWork, fbElapsed float64) (sched.Assignment, int, bool) {
	if s.aborted.Load() {
		return sched.Assignment{}, 0, false
	}
	if s.ledgerTab != nil {
		return s.refillLedger(worker, acpNow)
	}
	c := &s.counters[worker]
	reqAt := s.bus.Now()
	req := s.event(telemetry.ChunkRequested, worker)
	req.ACP = acpNow
	req.At = reqAt
	s.bus.Publish(req)
	batch := s.scratch[worker][:0]
	window := cap(s.scratch[worker])
	iters := 0

	s.mu.Lock()
	if s.aborted.Load() {
		// Re-checked under the refill mutex: Abort followed by a
		// mutex-acquiring Counts snapshot therefore observes every
		// grant that will ever happen, so a cancelled job's report
		// reconciles exactly with its telemetry.
		s.mu.Unlock()
		return sched.Assignment{}, 0, false
	}
	s.liveACP[worker] = acpNow
	if fb, ok := s.policy.(sched.FeedbackPolicy); ok && fbElapsed > 0 {
		fb.Feedback(worker, fbWork, fbElapsed)
	}
	if s.dist && !s.disableReplan && acp.MajorityChanged(s.planACP, s.liveACP) {
		if p2, err2 := s.plan(); err2 == nil {
			s.policy = p2
			s.replans++
			e := s.event(telemetry.StageAdvanced, worker)
			e.At = s.bus.Now()
			s.bus.Publish(e)
		}
	}
	for len(batch) < window {
		a, ok := s.policy.Next(sched.Request{Worker: worker, ACP: float64(acpNow)})
		if !ok {
			s.drained.Store(true)
			break
		}
		s.base = a.End()
		s.chunks++
		s.granted.Add(int64(a.Size))
		iters += a.Size
		now := s.bus.Now()
		s.waitHist.Record(worker, now-reqAt)
		e := s.event(telemetry.ChunkGranted, worker)
		e.Start, e.Size, e.ACP = a.Start, a.Size, acpNow
		e.Span = telemetry.SpanID(s.job, a.Start)
		e.At, e.Seconds = now, now-reqAt
		s.bus.Publish(e)
		batch = append(batch, a)
	}
	s.mu.Unlock()

	if len(batch) == 0 {
		return sched.Assignment{}, 0, false
	}
	for _, a := range batch[1:] {
		s.deques[worker].Push(a) // cannot fail: deque empty, cap >= window
	}
	c.Refills.Add(1)
	c.RefillChunks.Add(int64(len(batch)))
	e := s.event(telemetry.DequeRefilled, worker)
	e.Start, e.Size, e.ACP = batch[0].Start, len(batch), acpNow
	e.At = s.bus.Now()
	s.bus.Publish(e)
	return batch[0], iters, true
}

// refillLedger is Refill on the scheduling-step ledger: one
// fetch-and-add claims a whole window of steps, the table maps each
// step to its chunk, and nothing touches s.mu — p workers refilling
// concurrently contend on a single atomic instead of serialising
// through the policy lock. Feedback and re-planning don't apply: the
// ledger only arms for step-deterministic schemes, whose chunks ignore
// everything the master path would feed back.
//
// Cancellation here is best-effort where the mutex path is exact: a
// refill racing Abort may grant one final window. Those grants still
// publish their events, so telemetry reconciliation holds either way.
func (s *JobState) refillLedger(worker, acpNow int) (sched.Assignment, int, bool) {
	reqAt := s.bus.Now()
	req := s.event(telemetry.ChunkRequested, worker)
	req.ACP = acpNow
	req.At = reqAt
	s.bus.Publish(req)
	batch := s.scratch[worker][:0]
	window := cap(s.scratch[worker])
	iters := 0

	step, _ := s.ledgerCtr.FetchAdd(window)
	claimAt := s.bus.Now()
	fetch := s.event(telemetry.LedgerFetch, worker)
	fetch.Start = window
	fetch.At, fetch.Seconds = claimAt, claimAt-reqAt
	s.bus.Publish(fetch)
	for i := 0; i < window; i++ {
		a, ok := s.ledgerTab.Chunk(step + uint64(i))
		if !ok {
			// Steps past the table's end: the loop is fully claimed.
			// Over-claimed steps are harmlessly wasted — the counter
			// only ever moves forward.
			s.drained.Store(true)
			break
		}
		s.ledgerChunks.Add(1)
		s.granted.Add(int64(a.Size))
		iters += a.Size
		now := s.bus.Now()
		s.waitHist.Record(worker, now-reqAt)
		e := s.event(telemetry.ChunkGranted, worker)
		e.Start, e.Size, e.ACP = a.Start, a.Size, acpNow
		e.Span = telemetry.SpanID(s.job, a.Start)
		e.At, e.Seconds = now, now-reqAt
		s.bus.Publish(e)
		batch = append(batch, a)
	}
	if len(batch) == 0 {
		return sched.Assignment{}, 0, false
	}
	for _, a := range batch[1:] {
		s.deques[worker].Push(a) // cannot fail: deque empty, cap >= window
	}
	c := &s.counters[worker]
	c.Refills.Add(1)
	c.RefillChunks.Add(int64(len(batch)))
	e := s.event(telemetry.DequeRefilled, worker)
	e.Start, e.Size, e.ACP = batch[0].Start, len(batch), acpNow
	e.At = s.bus.Now()
	s.bus.Publish(e)
	return batch[0], iters, true
}

// LedgerActive reports whether refills draw from the scheduling-step
// ledger instead of the mutex-guarded policy.
func (s *JobState) LedgerActive() bool { return s.ledgerTab != nil }

// Feedback applies one completed chunk's measured cost to the policy,
// for schedulers whose workers interleave many jobs and cannot carry
// feedback to the next refill of the same job.
func (s *JobState) Feedback(worker int, work, elapsed float64) {
	if elapsed <= 0 {
		return
	}
	s.mu.Lock()
	if fb, ok := s.policy.(sched.FeedbackPolicy); ok {
		fb.Feedback(worker, work, elapsed)
	}
	s.mu.Unlock()
}

// Complete records the execution of one chunk, publishes its
// completion event, and reports whether this completion finished the
// job (drained with every granted iteration executed). A false return
// does not mean the job is unfinished — the final grant's drained flag
// may land after the last completion — so schedulers must also check
// Finished after a refill comes back empty.
//
//lint:loopsched-hotpath
func (s *JobState) Complete(worker int, a sched.Assignment, acpNow int, seconds float64) bool {
	done := s.completed.Add(int64(a.Size))
	s.compHist.Record(worker, seconds)
	e := s.event(telemetry.ChunkCompleted, worker)
	e.Start, e.Size, e.ACP = a.Start, a.Size, acpNow
	e.Span = telemetry.SpanID(s.job, a.Start)
	e.At, e.Seconds = s.bus.Now(), seconds
	s.bus.Publish(e)
	return s.drained.Load() && done >= s.granted.Load()
}

// Latency snapshots the job's request-to-grant and per-chunk compute
// latency histograms.
func (s *JobState) Latency() (wait, comp hist.Snapshot) {
	return s.waitHist.Snapshot(), s.compHist.Snapshot()
}

// Abort stops the job: no further refills will grant work. Chunks
// already granted but still queued in deques become stale — the owner
// discards them — so only the chunk each worker is currently executing
// runs to completion (preemption never splits a granted chunk).
func (s *JobState) Abort() {
	s.aborted.Store(true)
	s.drained.Store(true)
}

// Drained reports whether the policy has run dry (or the job was
// aborted): no refill will ever grant more work.
func (s *JobState) Drained() bool { return s.drained.Load() }

// Finished reports whether the job is complete: the policy is dry and
// every granted iteration has been executed.
func (s *JobState) Finished() bool {
	return s.drained.Load() && s.completed.Load() >= s.granted.Load()
}

// Granted returns the iterations granted so far.
func (s *JobState) Granted() int64 { return s.granted.Load() }

// Completed returns the iterations executed so far.
func (s *JobState) Completed() int64 { return s.completed.Load() }

// Counts snapshots the job's chunk accounting.
func (s *JobState) Counts() JobCounts {
	s.mu.Lock()
	chunks, replans := s.chunks, s.replans
	s.mu.Unlock()
	c := JobCounts{
		Chunks:    chunks + int(s.ledgerChunks.Load()),
		Replans:   replans,
		Granted:   s.granted.Load(),
		Completed: s.completed.Load(),
	}
	for i := range s.counters {
		c.Steals += s.counters[i].Steals.Load()
	}
	return c
}

// WorkerCounters snapshots worker i's deque counters for this job.
// Safe to call while the job is running: the live tally is atomic, so
// a scheduler polling a job mid-flight reads torn-free counts.
func (s *JobState) WorkerCounters(i int) steal.Counters { return s.counters[i].Snapshot() }
