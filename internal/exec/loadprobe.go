package exec

import (
	"os"
	"strconv"
	"strings"
)

// OSLoadProbe returns a LoadProbe that reads the host's real run-queue
// pressure — the paper's Q_i signal — from /proc/loadavg (the 1-minute
// load average, rounded). On systems without /proc it reports 0
// (dedicated). The probe never fails: load sensing is advisory.
func OSLoadProbe() func() int {
	return func() int {
		load, ok := readLoadAvg("/proc/loadavg")
		if !ok {
			return 0
		}
		// The loop process itself contributes ~1 to the load average;
		// Q_i counts the *extra* processes.
		extra := int(load + 0.5 - 1)
		if extra < 0 {
			return 0
		}
		return extra
	}
}

// readLoadAvg parses the first field of a loadavg-format file.
func readLoadAvg(path string) (float64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}
