package exec

import (
	"bytes"
	"net"
	"testing"

	"loopsched/internal/sched"
)

// startLedgerMaster is startMaster with the ledger armed before Serve
// (SetLedger's contract — the serve loop reads the table unlocked).
func startLedgerMaster(t *testing.T, s sched.Scheme, iterations, workers int) (*Master, string, func()) {
	t.Helper()
	m, err := NewMaster(s, iterations, workers)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetLedger(LedgerOn); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Serve(l); err != nil {
		t.Fatal(err)
	}
	return m, l.Addr().String(), func() { l.Close() }
}

// TestLedgerMixedTransportsOneListener runs the fetch-and-add ledger in
// a mixed fleet on one sniffed listener: a gob worker whose grants come
// off the ledger counter through the master path, a binary worker
// holding a table replica that claims steps with one-sided FetchAdd
// frames, and a binary worker without a replica on the batched-grant
// protocol. All three draw from the same step counter, so every
// iteration must arrive exactly once and the chunk tally must equal the
// table's step count.
func TestLedgerMixedTransportsOneListener(t *testing.T) {
	const n = 900
	for _, scheme := range []sched.Scheme{sched.TSSScheme{}, sched.CSSScheme{K: 7}, sched.GSSScheme{}} {
		t.Run(scheme.Name(), func(t *testing.T) {
			m, addr, stop := startLedgerMaster(t, scheme, n, 3)
			defer stop()
			if !m.LedgerActive() {
				t.Fatalf("ledger did not arm for step-deterministic scheme %s", scheme.Name())
			}

			runWorkers(t, addr, []Worker{
				{ID: 0, Kernel: intKernel, Transport: TransportNetRPC, Pipeline: true},
				{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: 2, LedgerTable: m.Ledger()},
				{ID: 2, Kernel: intKernel, Transport: TransportBinary, Window: 2, Pipeline: true},
			})
			results, rep, err := m.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Iterations != n {
				t.Fatalf("iterations = %d, want %d", rep.Iterations, n)
			}
			if want := m.Ledger().Steps(); rep.Chunks != want {
				t.Fatalf("chunks = %d, want the table's %d steps granted exactly once", rep.Chunks, want)
			}
			for i, r := range results {
				if !bytes.Equal(r, intKernel(i)) {
					t.Fatalf("result %d corrupted: %v", i, r)
				}
			}
		})
	}
}

// TestLedgerAllWireWorkers is the pure one-sided configuration: every
// worker holds a table replica, so after the hello deposits the master
// only ever sees FetchAdd claims and no-reply completion deposits.
func TestLedgerAllWireWorkers(t *testing.T) {
	const n = 1200
	m, addr, stop := startLedgerMaster(t, sched.FSSScheme{}, n, 3)
	defer stop()
	tab := m.Ledger()
	if tab == nil {
		t.Fatal("ledger did not arm for FSS")
	}

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, Transport: TransportBinary, Window: 2, LedgerTable: tab},
		{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: 4, LedgerTable: tab, WorkScale: 2},
		{ID: 2, Kernel: intKernel, Transport: TransportBinary, Window: 1, LedgerTable: tab},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Fatalf("iterations = %d, want %d", rep.Iterations, n)
	}
	if rep.Chunks != tab.Steps() {
		t.Fatalf("chunks = %d, want %d", rep.Chunks, tab.Steps())
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted: %v", i, r)
		}
	}
}

// TestLedgerIneligibleAdvisory pins SetLedger's advisory contract on
// the master: "on" for a feedback scheme is not an error, the master
// simply stays on the request/grant path.
func TestLedgerIneligibleAdvisory(t *testing.T) {
	m, err := NewMaster(sched.AWFScheme{}, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetLedger(LedgerOn); err != nil {
		t.Fatal(err)
	}
	if m.LedgerActive() {
		t.Fatal("ledger armed for a feedback scheme")
	}
	if err := m.SetLedger("sideways"); err == nil {
		t.Fatal("unknown ledger mode accepted")
	}
}
