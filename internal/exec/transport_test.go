package exec

import (
	"bytes"
	"net"
	"net/rpc"
	"sync"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
	"loopsched/internal/wire"
)

func TestTransportNormalize(t *testing.T) {
	t.Setenv(TransportEnv, "")
	if tr, ok := Transport("").Normalize(); !ok || tr != TransportBinary {
		t.Errorf(`Normalize("") = %q, %v; want binary`, tr, ok)
	}
	t.Setenv(TransportEnv, "netrpc")
	if tr, ok := Transport("").Normalize(); !ok || tr != TransportNetRPC {
		t.Errorf(`Normalize("") with env netrpc = %q, %v`, tr, ok)
	}
	t.Setenv(TransportEnv, "carrier-pigeon")
	if tr := DefaultTransport(); tr != TransportBinary {
		t.Errorf("unknown env value resolved to %q, want binary", tr)
	}
	if _, ok := Transport("carrier-pigeon").Normalize(); ok {
		t.Error("unknown transport normalized as valid")
	}
	if tr, ok := TransportNetRPC.Normalize(); !ok || tr != TransportNetRPC {
		t.Errorf("Normalize(netrpc) = %q, %v", tr, ok)
	}
}

// grantCollector records every granted chunk, in publish order.
type grantCollector struct {
	mu     sync.Mutex
	grants []sched.Assignment
}

func (g *grantCollector) BeginRun(telemetry.RunMeta) {}
func (g *grantCollector) Close() error               { return nil }
func (g *grantCollector) OnEvent(e telemetry.Event) {
	if e.Kind == telemetry.ChunkGranted || e.Kind == telemetry.ChunkPrefetched {
		g.mu.Lock()
		g.grants = append(g.grants, sched.Assignment{Start: e.Start, Size: e.Size})
		g.mu.Unlock()
	}
}

// grantSequence runs one serial worker to completion over the given
// transport and returns the granted chunk sequence the master
// published.
func grantSequence(t *testing.T, transport Transport, s sched.Scheme, n int) []sched.Assignment {
	t.Helper()
	bus := telemetry.NewBus(0)
	col := &grantCollector{}
	bus.Subscribe(col)

	m, addr, stop := startMaster(t, s, n, 1)
	defer stop()
	m.SetTelemetry(bus)

	runWorkers(t, addr, []Worker{{ID: 0, Kernel: intKernel, Transport: transport}})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Fatalf("%s: iterations = %d, want %d", transport, rep.Iterations, n)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("%s: result %d corrupted", transport, i)
		}
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	return col.grants
}

// TestTransportsGrantIdenticalSequence is the codec-equivalence
// property: with a deterministic scheme and a single serial worker,
// the gob and binary protocols must produce the exact same chunk
// sequence — same starts, same sizes, same order. Any framing or
// batching bug that loses, reorders or resizes a grant shows up here.
func TestTransportsGrantIdenticalSequence(t *testing.T) {
	const n = 700
	for _, scheme := range []sched.Scheme{sched.TSSScheme{}, sched.GSSScheme{}} {
		gob := grantSequence(t, TransportNetRPC, scheme, n)
		bin := grantSequence(t, TransportBinary, scheme, n)
		if len(gob) == 0 {
			t.Fatalf("%s: no grants observed over netrpc", scheme.Name())
		}
		if len(gob) != len(bin) {
			t.Fatalf("%s: netrpc granted %d chunks, binary %d", scheme.Name(), len(gob), len(bin))
		}
		for i := range gob {
			if gob[i] != bin[i] {
				t.Fatalf("%s: grant %d differs: netrpc %+v, binary %+v",
					scheme.Name(), i, gob[i], bin[i])
			}
		}
		// The sequence must also tile [0, n) exactly.
		covered := 0
		next := 0
		for _, g := range gob {
			if g.Start != next {
				t.Fatalf("%s: grant starts at %d, expected %d", scheme.Name(), g.Start, next)
			}
			next = g.Start + g.Size
			covered += g.Size
		}
		if covered != n {
			t.Fatalf("%s: grants cover %d iterations, want %d", scheme.Name(), covered, n)
		}
	}
}

// spanRecorder wraps a master's transport-independent batch handler
// and records, in grant order, every assignment and every span id the
// handler put on the wire-level reply — before the transport adapter
// (gob fallback) has a chance to drop fields it cannot carry.
type spanRecorder struct {
	mu     sync.Mutex
	m      *Master
	grants []sched.Assignment
	spans  []uint64
}

func (r *spanRecorder) batch(args ChunkArgs, credits int, rep *wire.Reply) error {
	err := r.m.nextBatch(args, credits, rep)
	r.mu.Lock()
	r.grants = append(r.grants, rep.Grants...)
	r.spans = append(r.spans, rep.Spans...)
	r.mu.Unlock()
	return err
}

// NextChunk mirrors Master.NextChunk: the one-grant gob adapter over
// the recorded batch handler.
func (r *spanRecorder) NextChunk(args ChunkArgs, reply *ChunkReply) error {
	var grants [1]sched.Assignment
	rep := wire.Reply{Grants: grants[:0]}
	if err := r.batch(args, 1, &rep); err != nil {
		return err
	}
	reply.Stop = rep.Stop
	if len(rep.Grants) > 0 {
		reply.Assign = rep.Grants[0]
	}
	return nil
}

// startRecordedMaster serves a master on a sniffed listener exactly as
// Master.Serve does, but routes both transports through a spanRecorder.
func startRecordedMaster(t *testing.T, n int, withBus bool) (*spanRecorder, *Master, string, func()) {
	t.Helper()
	m, err := NewMaster(sched.TSSScheme{}, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bus *telemetry.Bus
	if withBus {
		bus = telemetry.NewBus(0)
		m.SetTelemetry(bus)
	}
	rec := &spanRecorder{m: m}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Master", rec); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go ServeSniffed(srv, conn, m.bus, 0, rec.batch, nil)
		}
	}()
	stop := func() {
		l.Close()
		if bus != nil {
			bus.Close()
		}
	}
	return rec, m, l.Addr().String(), stop
}

// TestSpanTaggingPreservesGrantSequence is the span-equivalence
// property from the tracing PR: turning telemetry (and with it span
// tagging) on must not change the granted chunk sequence on either
// transport, spans must be entirely absent when telemetry is off
// (the wire package separately proves span-free frames are
// byte-identical to v1), and the gob fallback — whose reply struct
// cannot carry spans at all — must still interoperate on the same
// sniffed listener.
func TestSpanTaggingPreservesGrantSequence(t *testing.T) {
	const n = 500
	for _, transport := range []Transport{TransportBinary, TransportNetRPC} {
		var seqs [2][]sched.Assignment
		var spans [2][]uint64
		for i, withBus := range []bool{false, true} {
			rec, m, addr, stop := startRecordedMaster(t, n, withBus)
			runWorkers(t, addr, []Worker{{ID: 0, Kernel: intKernel, Transport: transport}})
			_, rep, err := m.Wait()
			stop()
			if err != nil {
				t.Fatalf("%s bus=%v: %v", transport, withBus, err)
			}
			if rep.Iterations != n {
				t.Fatalf("%s bus=%v: iterations = %d, want %d", transport, withBus, rep.Iterations, n)
			}
			seqs[i], spans[i] = rec.grants, rec.spans
		}
		if len(seqs[0]) == 0 || len(seqs[0]) != len(seqs[1]) {
			t.Fatalf("%s: granted %d chunks without bus, %d with", transport, len(seqs[0]), len(seqs[1]))
		}
		for i := range seqs[0] {
			if seqs[0][i] != seqs[1][i] {
				t.Fatalf("%s: grant %d differs with telemetry: off %+v, on %+v",
					transport, i, seqs[0][i], seqs[1][i])
			}
		}
		if len(spans[0]) != 0 {
			t.Fatalf("%s: %d spans attached with telemetry off, want 0", transport, len(spans[0]))
		}
		if len(spans[1]) != len(seqs[1]) {
			t.Fatalf("%s: %d spans for %d grants with telemetry on", transport, len(spans[1]), len(seqs[1]))
		}
		for i, g := range seqs[1] {
			if want := telemetry.SpanID(0, g.Start); spans[1][i] != want || spans[1][i] == 0 {
				t.Fatalf("%s: span %d = %#x, want %#x (grant %+v)", transport, i, spans[1][i], want, g)
			}
		}
	}
}

// TestRPCWireCreditWindow runs the batched-grant protocol in anger: a
// wide credit window, pipelined heterogeneous workers, and a fixed-chunk
// scheme that exercises the master's lock-free fast path. Every result
// must arrive exactly once.
func TestRPCWireCreditWindow(t *testing.T) {
	const n = 900
	for _, window := range []int{2, 8} {
		m, addr, stop := startMaster(t, sched.CSSScheme{K: 5}, n, 3)
		m.SetWindow(window)

		runWorkers(t, addr, []Worker{
			{ID: 0, Kernel: intKernel, Transport: TransportBinary, Window: window, Pipeline: true},
			{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: window, Pipeline: true, WorkScale: 2},
			{ID: 2, Kernel: intKernel, Transport: TransportBinary, Window: window},
		})
		results, rep, err := m.Wait()
		stop()
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if rep.Iterations != n {
			t.Fatalf("window %d: iterations = %d", window, rep.Iterations)
		}
		for i, r := range results {
			if !bytes.Equal(r, intKernel(i)) {
				t.Fatalf("window %d: result %d corrupted", window, i)
			}
		}
	}
}

// TestMixedTransportsOneListener: the master's sniffer serves a gob
// worker and a binary worker over the same listener in the same run.
func TestMixedTransportsOneListener(t *testing.T) {
	const n = 600
	m, addr, stop := startMaster(t, sched.FSSScheme{}, n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, Transport: TransportNetRPC, Pipeline: true},
		{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: 2, Pipeline: true},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestReplyPoolRecycles guards the pipelined gob loop's reply-path
// fix: taking and returning the pooled reply must not allocate once
// the pool is warm, and the reply always comes back zeroed.
func TestReplyPoolRecycles(t *testing.T) {
	r := getReply()
	r.Assign = sched.Assignment{Start: 7, Size: 3}
	r.Stop = true
	replyPool.Put(r)

	allocs := testing.AllocsPerRun(1000, func() {
		r := getReply()
		if r.Assign.Size != 0 || r.Assign.Start != 0 || r.Stop {
			panic("pooled reply not zeroed")
		}
		r.Assign = sched.Assignment{Start: 1, Size: 1}
		replyPool.Put(r)
	})
	if allocs >= 1 {
		t.Fatalf("pooled reply cycle allocates %.1f times per op, want 0", allocs)
	}
}
