package exec

import (
	"bytes"
	"sync"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

func TestTransportNormalize(t *testing.T) {
	t.Setenv(TransportEnv, "")
	if tr, ok := Transport("").Normalize(); !ok || tr != TransportBinary {
		t.Errorf(`Normalize("") = %q, %v; want binary`, tr, ok)
	}
	t.Setenv(TransportEnv, "netrpc")
	if tr, ok := Transport("").Normalize(); !ok || tr != TransportNetRPC {
		t.Errorf(`Normalize("") with env netrpc = %q, %v`, tr, ok)
	}
	t.Setenv(TransportEnv, "carrier-pigeon")
	if tr := DefaultTransport(); tr != TransportBinary {
		t.Errorf("unknown env value resolved to %q, want binary", tr)
	}
	if _, ok := Transport("carrier-pigeon").Normalize(); ok {
		t.Error("unknown transport normalized as valid")
	}
	if tr, ok := TransportNetRPC.Normalize(); !ok || tr != TransportNetRPC {
		t.Errorf("Normalize(netrpc) = %q, %v", tr, ok)
	}
}

// grantCollector records every granted chunk, in publish order.
type grantCollector struct {
	mu     sync.Mutex
	grants []sched.Assignment
}

func (g *grantCollector) BeginRun(telemetry.RunMeta) {}
func (g *grantCollector) Close() error               { return nil }
func (g *grantCollector) OnEvent(e telemetry.Event) {
	if e.Kind == telemetry.ChunkGranted || e.Kind == telemetry.ChunkPrefetched {
		g.mu.Lock()
		g.grants = append(g.grants, sched.Assignment{Start: e.Start, Size: e.Size})
		g.mu.Unlock()
	}
}

// grantSequence runs one serial worker to completion over the given
// transport and returns the granted chunk sequence the master
// published.
func grantSequence(t *testing.T, transport Transport, s sched.Scheme, n int) []sched.Assignment {
	t.Helper()
	bus := telemetry.NewBus(0)
	col := &grantCollector{}
	bus.Subscribe(col)

	m, addr, stop := startMaster(t, s, n, 1)
	defer stop()
	m.SetTelemetry(bus)

	runWorkers(t, addr, []Worker{{ID: 0, Kernel: intKernel, Transport: transport}})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Fatalf("%s: iterations = %d, want %d", transport, rep.Iterations, n)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("%s: result %d corrupted", transport, i)
		}
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	return col.grants
}

// TestTransportsGrantIdenticalSequence is the codec-equivalence
// property: with a deterministic scheme and a single serial worker,
// the gob and binary protocols must produce the exact same chunk
// sequence — same starts, same sizes, same order. Any framing or
// batching bug that loses, reorders or resizes a grant shows up here.
func TestTransportsGrantIdenticalSequence(t *testing.T) {
	const n = 700
	for _, scheme := range []sched.Scheme{sched.TSSScheme{}, sched.GSSScheme{}} {
		gob := grantSequence(t, TransportNetRPC, scheme, n)
		bin := grantSequence(t, TransportBinary, scheme, n)
		if len(gob) == 0 {
			t.Fatalf("%s: no grants observed over netrpc", scheme.Name())
		}
		if len(gob) != len(bin) {
			t.Fatalf("%s: netrpc granted %d chunks, binary %d", scheme.Name(), len(gob), len(bin))
		}
		for i := range gob {
			if gob[i] != bin[i] {
				t.Fatalf("%s: grant %d differs: netrpc %+v, binary %+v",
					scheme.Name(), i, gob[i], bin[i])
			}
		}
		// The sequence must also tile [0, n) exactly.
		covered := 0
		next := 0
		for _, g := range gob {
			if g.Start != next {
				t.Fatalf("%s: grant starts at %d, expected %d", scheme.Name(), g.Start, next)
			}
			next = g.Start + g.Size
			covered += g.Size
		}
		if covered != n {
			t.Fatalf("%s: grants cover %d iterations, want %d", scheme.Name(), covered, n)
		}
	}
}

// TestRPCWireCreditWindow runs the batched-grant protocol in anger: a
// wide credit window, pipelined heterogeneous workers, and a fixed-chunk
// scheme that exercises the master's lock-free fast path. Every result
// must arrive exactly once.
func TestRPCWireCreditWindow(t *testing.T) {
	const n = 900
	for _, window := range []int{2, 8} {
		m, addr, stop := startMaster(t, sched.CSSScheme{K: 5}, n, 3)
		m.SetWindow(window)

		runWorkers(t, addr, []Worker{
			{ID: 0, Kernel: intKernel, Transport: TransportBinary, Window: window, Pipeline: true},
			{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: window, Pipeline: true, WorkScale: 2},
			{ID: 2, Kernel: intKernel, Transport: TransportBinary, Window: window},
		})
		results, rep, err := m.Wait()
		stop()
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if rep.Iterations != n {
			t.Fatalf("window %d: iterations = %d", window, rep.Iterations)
		}
		for i, r := range results {
			if !bytes.Equal(r, intKernel(i)) {
				t.Fatalf("window %d: result %d corrupted", window, i)
			}
		}
	}
}

// TestMixedTransportsOneListener: the master's sniffer serves a gob
// worker and a binary worker over the same listener in the same run.
func TestMixedTransportsOneListener(t *testing.T) {
	const n = 600
	m, addr, stop := startMaster(t, sched.FSSScheme{}, n, 2)
	defer stop()

	runWorkers(t, addr, []Worker{
		{ID: 0, Kernel: intKernel, Transport: TransportNetRPC, Pipeline: true},
		{ID: 1, Kernel: intKernel, Transport: TransportBinary, Window: 2, Pipeline: true},
	})
	results, rep, err := m.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, intKernel(i)) {
			t.Fatalf("result %d corrupted", i)
		}
	}
}

// TestReplyPoolRecycles guards the pipelined gob loop's reply-path
// fix: taking and returning the pooled reply must not allocate once
// the pool is warm, and the reply always comes back zeroed.
func TestReplyPoolRecycles(t *testing.T) {
	r := getReply()
	r.Assign = sched.Assignment{Start: 7, Size: 3}
	r.Stop = true
	replyPool.Put(r)

	allocs := testing.AllocsPerRun(1000, func() {
		r := getReply()
		if r.Assign.Size != 0 || r.Assign.Start != 0 || r.Stop {
			panic("pooled reply not zeroed")
		}
		r.Assign = sched.Assignment{Start: 1, Size: 1}
		replyPool.Put(r)
	})
	if allocs >= 1 {
		t.Fatalf("pooled reply cycle allocates %.1f times per op, want 0", allocs)
	}
}
