package loadgen

import (
	"math"
	"testing"

	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

func TestConstant(t *testing.T) {
	s := Constant(2)
	if s.ExtraAt(0) != 2 || s.ExtraAt(1e9) != 2 {
		t.Errorf("constant load not constant: %v", s)
	}
	if Constant(0) != nil {
		t.Error("zero extra produced a script")
	}
}

func TestWindow(t *testing.T) {
	s := Window(5, 10, 3)
	if s.ExtraAt(4.9) != 0 || s.ExtraAt(5) != 3 || s.ExtraAt(9.9) != 3 || s.ExtraAt(10) != 0 {
		t.Errorf("window edges wrong")
	}
	if Window(10, 5, 1) != nil {
		t.Error("inverted window accepted")
	}
}

func TestPoissonDeterministicAndCalibrated(t *testing.T) {
	a := Poisson(0.5, 4, 1000, 9)
	b := Poisson(0.5, 4, 1000, 9)
	if len(a) != len(b) {
		t.Fatalf("same seed, different scripts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("phase %d differs", i)
		}
	}
	// Expected jobs ≈ rate × horizon = 500; mean load ≈ rate × mean
	// duration = 2 (Little's law). Allow generous slack.
	if len(a) < 350 || len(a) > 650 {
		t.Errorf("%d jobs, want ≈500", len(a))
	}
	mean := MeanExtra(a, 1000)
	if mean < 1.2 || mean > 2.8 {
		t.Errorf("mean load %.2f, want ≈2", mean)
	}
	if Poisson(0, 1, 1, 1) != nil {
		t.Error("zero rate produced jobs")
	}
}

func TestSquare(t *testing.T) {
	s := Square(10, 0.3, 100, 2)
	if got := s.ExtraAt(1); got != 2 {
		t.Errorf("on-phase load %d", got)
	}
	if got := s.ExtraAt(5); got != 0 {
		t.Errorf("off-phase load %d", got)
	}
	// Duty cycle: mean = extra × duty.
	if mean := MeanExtra(s, 100); math.Abs(mean-0.6) > 1e-9 {
		t.Errorf("mean %.3f, want 0.6", mean)
	}
	// Duty is clamped to 1.
	if s := Square(10, 5, 20, 1); MeanExtra(s, 20) != 1 {
		t.Errorf("duty clamp broken")
	}
}

func TestStaircase(t *testing.T) {
	s := Staircase(10, 3)
	want := map[float64]int{5: 0, 15: 1, 25: 2, 35: 3, 1e6: 3}
	for tt, w := range want {
		if got := s.ExtraAt(tt); got != w {
			t.Errorf("ExtraAt(%g) = %d, want %d", tt, got, w)
		}
	}
	if PeakExtra(s, 100) != 3 {
		t.Errorf("peak = %d", PeakExtra(s, 100))
	}
}

func TestMeanPeakEdges(t *testing.T) {
	if MeanExtra(nil, 10) != 0 || MeanExtra(Constant(1), 0) != 0 {
		t.Error("degenerate means non-zero")
	}
	if PeakExtra(nil, 10) != 0 {
		t.Error("empty peak non-zero")
	}
}

// TestDrivesSimulator: generated load scripts plug into the simulator
// and slow the loaded machine down accordingly.
func TestDrivesSimulator(t *testing.T) {
	mk := func(script sim.LoadScript) sim.Cluster {
		return sim.Cluster{Machines: []sim.Machine{
			{Power: 1, Link: sim.Link{Latency: 1e-4, Bandwidth: sim.Mbit100}, Load: script},
			{Power: 1, Link: sim.Link{Latency: 1e-4, Bandwidth: sim.Mbit100}},
		}}
	}
	w := workload.Uniform{N: 4000}
	p := sim.Params{BaseRate: 1e5, BytesPerIter: 1}
	base, err := sim.Run(mk(nil), sched.TSSScheme{}, w, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, script := range []sim.LoadScript{
		Constant(2),
		Square(0.01, 0.5, 10, 2),
		Poisson(100, 0.02, 20, 3),
	} {
		rep, err := sim.Run(mk(script), sched.TSSScheme{}, w, p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tp <= base.Tp {
			t.Errorf("load %v did not slow the run: %.4f vs %.4f", script[:min(2, len(script))], rep.Tp, base.Tp)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
