// Package loadgen synthesises external-load timelines for the
// non-dedicated experiments: the paper overloads machines with
// long-running matrix-add processes, but real shared workstations see
// richer patterns — jobs arriving at random, bursts, day/night cycles.
// Every generator compiles to a sim.LoadScript, so any pattern can
// drive the simulator and the distributed schemes' re-planning.
package loadgen

import (
	"math"
	"math/rand"

	"loopsched/internal/sim"
)

// Constant is the paper's §5.1 load: extra processes running for the
// whole experiment.
func Constant(extra int) sim.LoadScript {
	if extra <= 0 {
		return nil
	}
	return sim.LoadScript{{Start: 0, End: math.Inf(1), Extra: extra}}
}

// Window is a single burst of extra processes during [start, end).
func Window(start, end float64, extra int) sim.LoadScript {
	if extra <= 0 || end <= start {
		return nil
	}
	return sim.LoadScript{{Start: start, End: end, Extra: extra}}
}

// Poisson generates jobs arriving as a Poisson process with the given
// rate (jobs per second) over [0, horizon), each running for an
// exponentially distributed duration with the given mean. The same
// seed always yields the same script; overlapping jobs stack, exactly
// like processes sharing a run queue.
func Poisson(rate, meanDuration, horizon float64, seed int64) sim.LoadScript {
	if rate <= 0 || meanDuration <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var script sim.LoadScript
	for t := rng.ExpFloat64() / rate; t < horizon; t += rng.ExpFloat64() / rate {
		d := rng.ExpFloat64() * meanDuration
		script = append(script, sim.LoadPhase{Start: t, End: t + d, Extra: 1})
	}
	return script
}

// Square is a periodic on/off load: `extra` processes during the first
// `duty` fraction of every `period`, repeated until horizon.
func Square(period, duty, horizon float64, extra int) sim.LoadScript {
	if period <= 0 || duty <= 0 || extra <= 0 || horizon <= 0 {
		return nil
	}
	if duty > 1 {
		duty = 1
	}
	var script sim.LoadScript
	for t := 0.0; t < horizon; t += period {
		end := t + period*duty
		if end > horizon {
			end = horizon
		}
		script = append(script, sim.LoadPhase{Start: t, End: end, Extra: extra})
	}
	return script
}

// Staircase ramps the load up one process at a time at the given
// interval — the "users keep logging in" scenario that stresses the
// majority re-plan.
func Staircase(interval float64, steps int) sim.LoadScript {
	if interval <= 0 || steps <= 0 {
		return nil
	}
	var script sim.LoadScript
	for s := 1; s <= steps; s++ {
		script = append(script, sim.LoadPhase{
			Start: float64(s) * interval,
			End:   math.Inf(1),
			Extra: 1,
		})
	}
	return script
}

// MeanExtra returns the time-averaged number of extra processes over
// [0, horizon) — useful for calibrating patterns against each other.
func MeanExtra(script sim.LoadScript, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	var total float64
	for _, ph := range script {
		end := math.Min(ph.End, horizon)
		start := math.Max(ph.Start, 0)
		if end > start {
			total += float64(ph.Extra) * (end - start)
		}
	}
	return total / horizon
}

// PeakExtra returns the maximum simultaneous extra processes over
// [0, horizon), scanning phase boundaries.
func PeakExtra(script sim.LoadScript, horizon float64) int {
	peak := 0
	check := func(t float64) {
		if t < 0 || t >= horizon {
			return
		}
		if e := script.ExtraAt(t); e > peak {
			peak = e
		}
	}
	check(0)
	for _, ph := range script {
		check(ph.Start)
		check(ph.End)
	}
	return peak
}
