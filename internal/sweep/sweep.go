// Package sweep runs scheme × cluster × workload matrices on the
// simulator and aggregates the outcomes — the machinery behind
// cmd/sweep and the broader comparisons the paper's evaluation
// gestures at but only samples.
package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"loopsched/internal/affinity"
	"loopsched/internal/experiments"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/sim"
	"loopsched/internal/stats"
	"loopsched/internal/tree"
	"loopsched/internal/workload"
)

// TreeSName selects Tree Scheduling in a scheme list (it is not a
// sched.Scheme — it has its own run loop); AFSName likewise selects
// Affinity Scheduling.
const (
	TreeSName = "TreeS"
	AFSName   = "AFS"
)

// NamedWorkload pairs a workload with the label used in results.
type NamedWorkload struct {
	Name string
	W    workload.Workload
}

// Config describes the sweep matrix.
type Config struct {
	// Schemes are registered scheme names, plus optionally TreeSName.
	Schemes []string
	// Workers are the slave counts to sweep (paper mixes per count).
	Workers []int
	// Modes: false = dedicated, true = non-dedicated.
	Modes []bool
	// Workloads to run.
	Workloads []NamedWorkload
	// Params are the simulator settings shared by all cells.
	Params sim.Params
}

// Validate rejects empty axes and unknown schemes.
func (c Config) Validate() error {
	if len(c.Schemes) == 0 || len(c.Workers) == 0 || len(c.Modes) == 0 || len(c.Workloads) == 0 {
		return fmt.Errorf("sweep: every axis needs at least one value")
	}
	for _, name := range c.Schemes {
		if name == TreeSName || name == AFSName {
			continue
		}
		if _, err := sched.Lookup(name); err != nil {
			return err
		}
	}
	return nil
}

// Result is one cell's outcome.
type Result struct {
	Scheme       string
	Workload     string
	Workers      int
	NonDedicated bool
	Tp           float64
	Chunks       int
	Replans      int
	Imbalance    float64
	MeanWait     float64
	MeanComm     float64
}

// cell identifies a comparison group (everything but the scheme).
type cell struct {
	workload     string
	workers      int
	nonDedicated bool
}

// Run executes the full matrix. Results are ordered deterministically:
// workload, then workers, then mode, then scheme.
func Run(cfg Config) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []Result
	for _, nw := range cfg.Workloads {
		for _, p := range cfg.Workers {
			for _, mode := range cfg.Modes {
				cluster := experiments.Cluster(p, mode)
				for _, name := range cfg.Schemes {
					rep, err := runOne(cluster, name, nw.W, cfg.Params)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/p=%d: %w", name, nw.Name, p, err)
					}
					out = append(out, Result{
						Scheme:       name,
						Workload:     nw.Name,
						Workers:      p,
						NonDedicated: mode,
						Tp:           rep.Tp,
						Chunks:       rep.Chunks,
						Replans:      rep.Replans,
						Imbalance:    rep.CompImbalance(),
						MeanWait:     rep.MeanWait(),
						MeanComm:     rep.MeanComm(),
					})
				}
			}
		}
	}
	return out, nil
}

func runOne(c sim.Cluster, name string, w workload.Workload, p sim.Params) (metrics.Report, error) {
	switch name {
	case TreeSName:
		return tree.Run(c, tree.Options{Weighted: true}, w, p)
	case AFSName:
		return affinity.Run(c, affinity.Options{Weighted: true}, w, p)
	}
	s, err := sched.Lookup(name)
	if err != nil {
		return metrics.Report{}, err
	}
	return sim.Run(c, s, w, p)
}

// Recommendation ranks schemes for one concrete (cluster, workload)
// pair — the capacity-planning question "which scheme should I run?".
type Recommendation struct {
	Scheme    string
	Tp        float64
	Chunks    int
	Imbalance float64
}

// Recommend runs every named scheme on the given cluster and workload
// and returns them ranked by parallel time (best first).
func Recommend(c sim.Cluster, schemes []string, w workload.Workload, p sim.Params) ([]Recommendation, error) {
	if len(schemes) == 0 {
		return nil, fmt.Errorf("sweep: no schemes to rank")
	}
	var out []Recommendation
	for _, name := range schemes {
		rep, err := runOne(c, name, w, p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, Recommendation{
			Scheme:    name,
			Tp:        rep.Tp,
			Chunks:    rep.Chunks,
			Imbalance: rep.CompImbalance(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tp < out[j].Tp })
	return out, nil
}

// TrialSummary aggregates one cell's parallel time over repeated
// randomised workload instances.
type TrialSummary struct {
	Scheme       string
	Workload     string
	Workers      int
	NonDedicated bool
	Tp           stats.Summary
}

// RunTrials repeats the matrix over `trials` workload instances (gen
// builds the instance set for each trial — typically the same
// generators with different seeds) and returns per-cell summaries with
// confidence intervals.
func RunTrials(cfg Config, gen func(trial int) []NamedWorkload, trials int) ([]TrialSummary, error) {
	if trials < 1 {
		return nil, fmt.Errorf("sweep: need at least one trial")
	}
	if gen == nil {
		return nil, fmt.Errorf("sweep: nil workload generator")
	}
	samples := map[Result][]float64{} // key with Tp zeroed
	var order []Result
	for trial := 0; trial < trials; trial++ {
		cfg.Workloads = gen(trial)
		results, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		for _, r := range results {
			key := Result{Scheme: r.Scheme, Workload: r.Workload,
				Workers: r.Workers, NonDedicated: r.NonDedicated}
			if _, seen := samples[key]; !seen {
				order = append(order, key)
			}
			samples[key] = append(samples[key], r.Tp)
		}
	}
	out := make([]TrialSummary, 0, len(order))
	for _, key := range order {
		out = append(out, TrialSummary{
			Scheme:       key.Scheme,
			Workload:     key.Workload,
			Workers:      key.Workers,
			NonDedicated: key.NonDedicated,
			Tp:           stats.Summarize(samples[key]),
		})
	}
	return out, nil
}

// FormatTrials renders trial summaries, flagging the per-cell winner
// and whether it is statistically significant (Welch, 95%) against
// the runner-up.
func FormatTrials(summaries []TrialSummary) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tp\tmode\tscheme\tTp")
	type cellKey struct {
		w    string
		p    int
		mode bool
	}
	best := map[cellKey]*TrialSummary{}
	second := map[cellKey]*TrialSummary{}
	for i := range summaries {
		s := &summaries[i]
		k := cellKey{s.Workload, s.Workers, s.NonDedicated}
		switch {
		case best[k] == nil || s.Tp.Mean < best[k].Tp.Mean:
			second[k] = best[k]
			best[k] = s
		case second[k] == nil || s.Tp.Mean < second[k].Tp.Mean:
			second[k] = s
		}
	}
	for i := range summaries {
		s := &summaries[i]
		k := cellKey{s.Workload, s.Workers, s.NonDedicated}
		mode := "ded"
		if s.NonDedicated {
			mode = "non"
		}
		marker := ""
		if best[k] == s {
			marker = " ←best"
			if second[k] != nil && stats.SignificantlyFaster(s.Tp, second[k].Tp) {
				marker = " ←best*"
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s%s\n",
			s.Workload, s.Workers, mode, s.Scheme, s.Tp, marker)
	}
	tw.Flush()
	sb.WriteString("(* = significantly faster than the runner-up at 95%)\n")
	return sb.String()
}

// WriteCSV emits the results with a header row.
func WriteCSV(w io.Writer, results []Result) error {
	if _, err := fmt.Fprintln(w, "scheme,workload,workers,nondedicated,tp,chunks,replans,imbalance,meanwait,meancomm"); err != nil {
		return err
	}
	for _, r := range results {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%t,%.6f,%d,%d,%.4f,%.6f,%.6f\n",
			r.Scheme, r.Workload, r.Workers, r.NonDedicated, r.Tp,
			r.Chunks, r.Replans, r.Imbalance, r.MeanWait, r.MeanComm); err != nil {
			return err
		}
	}
	return nil
}

// Wins counts, per scheme, how many comparison cells it wins (lowest
// T_p). Ties award every tied scheme.
func Wins(results []Result) map[string]int {
	best := map[cell]float64{}
	for _, r := range results {
		c := cell{r.Workload, r.Workers, r.NonDedicated}
		if v, ok := best[c]; !ok || r.Tp < v {
			best[c] = r.Tp
		}
	}
	wins := map[string]int{}
	for _, r := range results {
		c := cell{r.Workload, r.Workers, r.NonDedicated}
		if r.Tp <= best[c]+1e-12 {
			wins[r.Scheme]++
		}
	}
	return wins
}

// FormatTable renders the results grouped by cell, one scheme column
// each, with a final wins summary.
func FormatTable(results []Result) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tp\tmode\tscheme\tTp(s)\tchunks\timbalance\twait\tcomm")
	for _, r := range results {
		mode := "ded"
		if r.NonDedicated {
			mode = "non"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.3f\t%d\t%.2f\t%.3f\t%.3f\n",
			r.Workload, r.Workers, mode, r.Scheme, r.Tp, r.Chunks,
			r.Imbalance, r.MeanWait, r.MeanComm)
	}
	tw.Flush()

	wins := Wins(results)
	names := make([]string, 0, len(wins))
	for n := range wins {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if wins[names[i]] != wins[names[j]] {
			return wins[names[i]] > wins[names[j]]
		}
		return names[i] < names[j]
	})
	sb.WriteString("\nwins (lowest Tp per workload × p × mode):\n")
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-8s %d\n", n, wins[n])
	}
	return sb.String()
}
