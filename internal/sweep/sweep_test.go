package sweep

import (
	"strings"
	"testing"

	"loopsched/internal/experiments"
	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

// experimentsCluster aliases the shared paper-testbed builder.
func experimentsCluster(p int, nondedicated bool) sim.Cluster {
	return experiments.Cluster(p, nondedicated)
}

func smallConfig() Config {
	return Config{
		Schemes: []string{"TSS", "DTSS", TreeSName},
		Workers: []int{2, 4},
		Modes:   []bool{false, true},
		Workloads: []NamedWorkload{
			{Name: "uniform", W: workload.Uniform{N: 1000}},
			{Name: "ramp", W: workload.LinearIncreasing{N: 800}},
		},
		Params: sim.Params{BaseRate: 1e5, BytesPerIter: 2},
	}
}

func TestRunMatrix(t *testing.T) {
	results, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 * 2 * 2 // schemes × workers × modes × workloads
	if len(results) != want {
		t.Fatalf("%d results, want %d", len(results), want)
	}
	for _, r := range results {
		if r.Tp <= 0 {
			t.Errorf("%+v: non-positive Tp", r)
		}
		if r.Chunks < 1 {
			t.Errorf("%+v: no chunks", r)
		}
	}
	// Deterministic ordering: first block is the uniform workload at
	// p=2 dedicated, schemes in config order.
	if results[0].Scheme != "TSS" || results[0].Workload != "uniform" ||
		results[0].Workers != 2 || results[0].NonDedicated {
		t.Errorf("ordering broken: %+v", results[0])
	}
	if results[1].Scheme != "DTSS" || results[2].Scheme != TreeSName {
		t.Errorf("scheme order broken: %+v, %+v", results[1], results[2])
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestValidate(t *testing.T) {
	bad := smallConfig()
	bad.Schemes = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty schemes accepted")
	}
	bad = smallConfig()
	bad.Schemes = []string{"NOPE"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(bad); err == nil {
		t.Error("Run accepted invalid config")
	}
}

func TestWins(t *testing.T) {
	results := []Result{
		{Scheme: "A", Workload: "w", Workers: 2, Tp: 1.0},
		{Scheme: "B", Workload: "w", Workers: 2, Tp: 2.0},
		{Scheme: "A", Workload: "w", Workers: 4, Tp: 3.0},
		{Scheme: "B", Workload: "w", Workers: 4, Tp: 3.0}, // tie
	}
	wins := Wins(results)
	if wins["A"] != 2 || wins["B"] != 1 {
		t.Errorf("wins = %v", wins)
	}
}

func TestRunTrials(t *testing.T) {
	cfg := smallConfig()
	cfg.Schemes = []string{"TSS", "DTSS"}
	cfg.Workers = []int{4}
	cfg.Modes = []bool{true}
	gen := func(trial int) []NamedWorkload {
		return []NamedWorkload{
			{Name: "random", W: workload.NewRandom(600, 3, 1, int64(trial))},
		}
	}
	summaries, err := RunTrials(cfg, gen, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 2 {
		t.Fatalf("%d summaries", len(summaries))
	}
	for _, s := range summaries {
		if s.Tp.N != 6 {
			t.Errorf("%s: %d samples", s.Scheme, s.Tp.N)
		}
		if s.Tp.Mean <= 0 || s.Tp.StdDev < 0 {
			t.Errorf("%s: %+v", s.Scheme, s.Tp)
		}
		// Different seeds must actually vary the workload.
		if s.Tp.Min == s.Tp.Max {
			t.Errorf("%s: no variance across trials", s.Scheme)
		}
	}
	out := FormatTrials(summaries)
	if !strings.Contains(out, "←best") || !strings.Contains(out, "n=6") {
		t.Errorf("trial table:\n%s", out)
	}
	// Error paths.
	if _, err := RunTrials(cfg, gen, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunTrials(cfg, nil, 3); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestRunAFS(t *testing.T) {
	cfg := smallConfig()
	cfg.Schemes = []string{AFSName}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Scheme != AFSName || r.Tp <= 0 {
			t.Errorf("AFS row %+v", r)
		}
	}
}

func TestRecommend(t *testing.T) {
	c := experimentsCluster(8, true)
	recs, err := Recommend(c, []string{"TSS", "DTSS", TreeSName},
		workload.LinearDecreasing{N: 2000}, sim.Params{BaseRate: 1e5, BytesPerIter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d recommendations", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Tp < recs[i-1].Tp {
			t.Errorf("ranking unsorted: %+v", recs)
		}
	}
	// On a loaded heterogeneous cluster the simple scheme must not win.
	if recs[0].Scheme == "TSS" {
		t.Errorf("TSS won on a loaded cluster: %+v", recs)
	}
	if _, err := Recommend(c, nil, workload.Uniform{N: 10}, sim.Params{}); err == nil {
		t.Error("empty candidate list accepted")
	}
	if _, err := Recommend(c, []string{"NOPE"}, workload.Uniform{N: 10}, sim.Params{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestWriteCSVAndFormat(t *testing.T) {
	results, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(results)+1 {
		t.Fatalf("%d CSV lines for %d results", len(lines), len(results))
	}
	if !strings.HasPrefix(lines[0], "scheme,workload,") {
		t.Errorf("header: %q", lines[0])
	}

	table := FormatTable(results)
	for _, want := range []string{"workload", "wins", "TSS", "DTSS", "TreeS", "uniform", "ramp"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
