package mp

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest: arbitrary bytes never panic the request decoder,
// and every successfully decoded request re-encodes to an equivalent
// message.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(0, 0, nil))
	f.Add(encodeRequest(42, 9, []resultEntry{{index: 1, data: []byte("abc")}}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		acpVal, compMicros, entries, err := decodeRequest(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if len(e.data) > len(data) {
				t.Fatalf("entry larger than input: %d > %d", len(e.data), len(data))
			}
		}
		// Round-trip through the encoder.
		again, cm2, entries2, err := decodeRequest(encodeRequest(acpVal, compMicros, entries))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != acpVal || cm2 != compMicros || len(entries2) != len(entries) {
			t.Fatalf("round trip changed shape")
		}
		for i := range entries {
			if entries2[i].index != entries[i].index || !bytes.Equal(entries2[i].data, entries[i].data) {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}

// FuzzDecodeAssign: arbitrary bytes never panic the assignment decoder.
func FuzzDecodeAssign(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := decodeAssign(data)
		if err != nil {
			return
		}
		got, err := decodeAssign(encodeAssign(a))
		if err != nil || got != a {
			t.Fatalf("round trip: %v %+v vs %+v", err, got, a)
		}
	})
}
