package mp

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"loopsched/internal/acp"
	"loopsched/internal/metrics"
	"loopsched/internal/sched"
	"loopsched/internal/telemetry"
)

// This file is the paper's master/slave program (§3.1's pseudocode)
// written against the Comm interface, so the same code runs over the
// in-process world or real TCP — like the original ran over mpich.
//
// Protocol: a slave sends tagRequest carrying its ACP and the
// piggy-backed results of its previous chunk (§5); the master answers
// tagAssign with an iteration interval, or tagStop. The master
// re-plans when a majority of reported ACPs changed (step 2(c)).
const (
	tagRequest = 1
	tagAssign  = 2
	tagStop    = 3
)

// encodeRequest packs ACP, the previous chunk's computation time (in
// microseconds, for the master's per-PE breakdown) and piggy-backed
// results.
func encodeRequest(acp int, compMicros int64, results []resultEntry) []byte {
	n := 12
	for _, r := range results {
		n += 8 + len(r.data)
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(acp)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(compMicros))
	for _, r := range results {
		buf = binary.BigEndian.AppendUint32(buf, uint32(int32(r.index)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.data)))
		buf = append(buf, r.data...)
	}
	return buf
}

type resultEntry struct {
	index int
	data  []byte
}

func decodeRequest(data []byte) (acpVal int, compMicros int64, results []resultEntry, err error) {
	if len(data) < 12 {
		return 0, 0, nil, fmt.Errorf("mp: short request (%d bytes)", len(data))
	}
	acpVal = int(int32(binary.BigEndian.Uint32(data[0:4])))
	compMicros = int64(binary.BigEndian.Uint64(data[4:12]))
	rest := data[12:]
	for len(rest) > 0 {
		if len(rest) < 8 {
			return 0, 0, nil, fmt.Errorf("mp: truncated result header")
		}
		idx := int(int32(binary.BigEndian.Uint32(rest[0:4])))
		n := int(binary.BigEndian.Uint32(rest[4:8]))
		rest = rest[8:]
		if n > len(rest) {
			return 0, 0, nil, fmt.Errorf("mp: truncated result payload")
		}
		results = append(results, resultEntry{index: idx, data: rest[:n:n]})
		rest = rest[n:]
	}
	return acpVal, compMicros, results, nil
}

func encodeAssign(a sched.Assignment) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(int32(a.Start)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(int32(a.Size)))
	return buf[:]
}

func decodeAssign(data []byte) (sched.Assignment, error) {
	if len(data) != 8 {
		return sched.Assignment{}, fmt.Errorf("mp: bad assignment frame (%d bytes)", len(data))
	}
	return sched.Assignment{
		Start: int(int32(binary.BigEndian.Uint32(data[0:4]))),
		Size:  int(int32(binary.BigEndian.Uint32(data[4:8]))),
	}, nil
}

// MasterOptions tune RunMaster.
type MasterOptions struct {
	// DisableReplan turns off the step-2(c) majority re-plan.
	DisableReplan bool
	// Telemetry, when non-nil, receives live protocol events. Workers
	// are identified by rank−1 (matching Report.PerWorker indexing).
	// Completion events are emitted when a slave's timing report
	// arrives piggy-backed on its next request, so the last chunk of a
	// stopped slave has no completion event.
	Telemetry *telemetry.Bus
}

// RunMaster schedules `iterations` loop iterations over the
// communicator's size−1 slaves and collects their results (indexed by
// iteration). It returns when every slave has been stopped.
func RunMaster(c Comm, scheme sched.Scheme, iterations int, opts MasterOptions) ([][]byte, metrics.Report, error) {
	return RunMasterContext(context.Background(), c, scheme, iterations, opts)
}

// RunMasterContext is RunMaster with cancellation. When ctx ends the
// master stops handing out work, sends tagStop to every slave it has
// not already stopped — so their loops terminate instead of blocking
// on a reply that will never come — and returns ctx's error alongside
// whatever results arrived. With the built-in transports a blocked
// Recv is woken immediately (via an injected sentinel); a foreign Comm
// implementation is only checked between messages.
func RunMasterContext(ctx context.Context, c Comm, scheme sched.Scheme, iterations int, opts MasterOptions) ([][]byte, metrics.Report, error) {
	if c.Rank() != 0 {
		return nil, metrics.Report{}, fmt.Errorf("mp: master must be rank 0, not %d", c.Rank())
	}
	workers := c.Size() - 1
	if workers < 1 {
		return nil, metrics.Report{}, fmt.Errorf("mp: no slaves in a world of %d", c.Size())
	}
	dist := sched.Distributed(scheme)
	results := make([][]byte, iterations)
	rep := metrics.Report{Scheme: scheme.Name(), Workers: workers, Iterations: iterations}

	stoppedSet := make([]bool, workers+1) // indexed by rank
	cancelled := func() ([][]byte, metrics.Report, error) {
		for r := 1; r <= workers; r++ {
			if !stoppedSet[r] {
				_ = c.Send(r, tagStop, nil) // best effort: rank may not be connected yet
			}
		}
		return results, rep, ctx.Err()
	}
	if ctx.Done() != nil {
		if inj, ok := c.(injector); ok {
			quit := make(chan struct{})
			defer close(quit)
			go func() {
				select {
				case <-ctx.Done():
					_ = inj.inject(Message{From: wakeSource, Tag: tagRequest})
				case <-quit:
				}
			}()
		}
	}

	liveACP := make([]int, workers)
	planACP := make([]int, workers)
	base := 0
	plan := func() (sched.Policy, error) {
		cfg := sched.Config{Iterations: iterations - base, Workers: workers}
		if dist {
			powers := make([]float64, workers)
			for i, a := range liveACP {
				if a < 1 {
					a = 1
				}
				powers[i] = float64(a)
			}
			cfg.Powers = powers
		}
		pol, err := scheme.NewPolicy(cfg)
		if err != nil {
			return nil, err
		}
		copy(planACP, liveACP)
		return sched.Offset(pol, base), nil
	}

	perWorker := make([]metrics.Times, workers)
	got := make([]bool, iterations)
	received := 0
	store := func(entries []resultEntry) error {
		for _, r := range entries {
			if r.index < 0 || r.index >= iterations {
				return fmt.Errorf("mp: result index %d out of range", r.index)
			}
			if !got[r.index] {
				got[r.index] = true
				received++
			}
			results[r.index] = r.data
		}
		return nil
	}

	type pending struct {
		worker int
		acp    int
		at     float64 // arrival instant on the telemetry clock
	}
	var queue []pending
	bus := opts.Telemetry
	joined := make([]bool, workers+1)                 // indexed by rank
	lastAssign := make([]sched.Assignment, workers+1) // chunk awaiting its timing report
	// arrived notes a request's protocol events and returns its arrival
	// instant for the grant-latency measurement.
	arrived := func(rank, acpVal int, compMicros int64) float64 {
		at := bus.Now()
		if !joined[rank] {
			joined[rank] = true
			bus.Publish(telemetry.Event{
				Kind: telemetry.WorkerJoined, Worker: rank - 1,
				ACP: acpVal, At: at,
			})
		}
		if compMicros > 0 && lastAssign[rank].Size > 0 {
			bus.Publish(telemetry.Event{
				Kind: telemetry.ChunkCompleted, Worker: rank - 1,
				Start: lastAssign[rank].Start, Size: lastAssign[rank].Size,
				ACP: acpVal, At: at, Seconds: float64(compMicros) / 1e6,
			})
			lastAssign[rank] = sched.Assignment{}
		}
		bus.Publish(telemetry.Event{
			Kind: telemetry.ChunkRequested, Worker: rank - 1,
			ACP: acpVal, At: at,
		})
		return at
	}

	// Step 1(a): a distributed master waits for every slave's first
	// report before planning.
	if dist {
		seen := make(map[int]bool, workers)
		for len(seen) < workers {
			msg, err := c.Recv(AnySource, tagRequest)
			if err != nil {
				return nil, rep, err
			}
			if msg.From == wakeSource || ctx.Err() != nil {
				return cancelled()
			}
			a, _, entries, err := decodeRequest(msg.Data)
			if err != nil {
				return nil, rep, err
			}
			if err := store(entries); err != nil {
				return nil, rep, err
			}
			liveACP[msg.From-1] = a
			seen[msg.From] = true
			queue = append(queue, pending{worker: msg.From, acp: a, at: arrived(msg.From, a, 0)})
		}
		// Service the initial queue in decreasing-ACP order.
		for i := 0; i < len(queue); i++ {
			for j := i + 1; j < len(queue); j++ {
				if queue[j].acp > queue[i].acp {
					queue[i], queue[j] = queue[j], queue[i]
				}
			}
		}
	}

	policy, err := plan()
	if err != nil {
		return nil, rep, err
	}

	stopped := 0
	serve := func(p pending) error {
		liveACP[p.worker-1] = p.acp
		if dist && !opts.DisableReplan && acp.MajorityChanged(planACP, liveACP) {
			if p2, err := plan(); err == nil {
				policy = p2
				rep.Replans++
				bus.Publish(telemetry.Event{
					Kind: telemetry.StageAdvanced, Worker: p.worker - 1,
					Start: base, Size: iterations - base, At: bus.Now(),
				})
			}
		}
		a, ok := policy.Next(sched.Request{Worker: p.worker - 1, ACP: float64(p.acp)})
		if !ok {
			stopped++
			stoppedSet[p.worker] = true
			return c.Send(p.worker, tagStop, nil)
		}
		base = a.End()
		rep.Chunks++
		lastAssign[p.worker] = a
		if bus != nil {
			now := bus.Now()
			bus.Publish(telemetry.Event{
				Kind: telemetry.ChunkGranted, Worker: p.worker - 1,
				Start: a.Start, Size: a.Size, ACP: p.acp,
				At: now, Seconds: now - p.at,
			})
		}
		return c.Send(p.worker, tagAssign, encodeAssign(a))
	}
	for _, p := range queue {
		if err := serve(p); err != nil {
			return nil, rep, err
		}
	}
	for stopped < workers {
		msg, err := c.Recv(AnySource, tagRequest)
		if err != nil {
			return nil, rep, err
		}
		if msg.From == wakeSource || ctx.Err() != nil {
			return cancelled()
		}
		a, compMicros, entries, err := decodeRequest(msg.Data)
		if err != nil {
			return nil, rep, err
		}
		if compMicros > 0 {
			perWorker[msg.From-1].Comp += float64(compMicros) / 1e6
		}
		if err := store(entries); err != nil {
			return nil, rep, err
		}
		if err := serve(pending{worker: msg.From, acp: a, at: arrived(msg.From, a, compMicros)}); err != nil {
			return nil, rep, err
		}
	}
	rep.PerWorker = perWorker
	if received != iterations {
		return results, rep, fmt.Errorf("mp: %d of %d results missing", iterations-received, iterations)
	}
	return results, rep, nil
}

// WorkerOptions describe one slave.
type WorkerOptions struct {
	// Kernel computes one iteration's result.
	Kernel func(iteration int) []byte
	// VirtualPower is V_i (0 means 1).
	VirtualPower float64
	// LoadProbe returns the current external load Q_i − 1 (nil = 0).
	LoadProbe func() int
	// ACP converts power and run-queue into the reported A_i.
	ACP acp.Model
	// WorkScale repeats the kernel to emulate a slower machine.
	WorkScale int
}

// RunWorker participates as a slave until the master sends tagStop
// (the §3.1 slave loop: probe load, request with A_i and piggy-backed
// results, compute).
func RunWorker(c Comm, opts WorkerOptions) error {
	if c.Rank() == 0 {
		return fmt.Errorf("mp: rank 0 is the master")
	}
	if opts.Kernel == nil {
		return fmt.Errorf("mp: worker needs a kernel")
	}
	power := opts.VirtualPower
	if power <= 0 {
		power = 1
	}
	scale := opts.WorkScale
	if scale < 1 {
		scale = 1
	}
	var held []resultEntry
	var compMicros int64
	for {
		load := 0
		if opts.LoadProbe != nil {
			load = opts.LoadProbe()
		}
		a := opts.ACP.ACP(power, 1+load)
		if err := c.Send(0, tagRequest, encodeRequest(a, compMicros, held)); err != nil {
			return err
		}
		held = held[:0]
		msg, err := c.Recv(0, AnyTag)
		if err != nil {
			return err
		}
		if msg.Tag == tagStop {
			return nil
		}
		assign, err := decodeAssign(msg.Data)
		if err != nil {
			return err
		}
		start := time.Now()
		for i := assign.Start; i < assign.End(); i++ {
			var data []byte
			for r := 0; r < scale; r++ {
				data = opts.Kernel(i)
			}
			held = append(held, resultEntry{index: i, data: data})
		}
		compMicros = time.Since(start).Microseconds()
	}
}
