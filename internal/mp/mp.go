// Package mp is a small message-passing substrate in the style of the
// MPI core the paper's implementation relies on (mpich 1.2.0):
// numbered ranks exchanging tagged point-to-point messages, with
// any-source/any-tag receives. Two transports are provided — an
// in-process channel world (rank = goroutine) and a TCP star (rank 0
// accepts, workers dial) — and loop.go implements the paper's
// master/slave self-scheduling program directly on top, mirroring the
// §3.1 pseudocode.
package mp

import (
	"errors"
	"fmt"
	"sync"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message is one received datagram.
type Message struct {
	From int
	Tag  int
	Data []byte
}

// Comm is one rank's communicator endpoint. Sends are non-blocking
// (buffered); Recv blocks until a matching message arrives. Message
// order is preserved per (sender, receiver) pair, as in MPI.
type Comm interface {
	// Rank is this endpoint's id, 0..Size()-1; rank 0 is the master.
	Rank() int
	// Size is the number of ranks in the world.
	Size() int
	// Send delivers data to rank `to` with the given tag.
	Send(to, tag int, data []byte) error
	// Recv returns the oldest message matching (from, tag); use
	// AnySource/AnyTag as wildcards.
	Recv(from, tag int) (Message, error)
	// Close tears the endpoint down; blocked Recvs return an error.
	Close() error
}

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mp: communicator closed")

// wakeSource is an impossible rank used to wake a blocked master Recv
// when its context is cancelled. Neither transport ever produces it
// from a real peer (ranks are ≥ 0 and AnySource is −1).
const wakeSource = -2

// injector delivers a synthetic message straight into a rank's own
// inbox. Both built-in transports implement it; RunMasterContext uses
// it for prompt cancellation (a tcpMaster cannot Send to itself — it
// holds no connection for rank 0 — so the wake must be injected).
type injector interface {
	inject(Message) error
}

func (c *localComm) inject(m Message) error { return c.in.put(m) }

// inbox is a matching queue shared by both transports.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m Message) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return ErrClosed
	}
	ib.queue = append(ib.queue, m)
	ib.cond.Broadcast()
	return nil
}

func (ib *inbox) get(from, tag int) (Message, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, m := range ib.queue {
			if (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag) {
				ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
				return m, nil
			}
		}
		if ib.closed {
			return Message{}, ErrClosed
		}
		ib.cond.Wait()
	}
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// localComm is one rank of an in-process world.
type localComm struct {
	rank  int
	size  int
	world []*localComm
	in    *inbox
}

// NewWorld creates an in-process world of n ranks connected through
// channels; index i of the returned slice is rank i's endpoint.
func NewWorld(n int) ([]Comm, error) {
	if n < 1 {
		return nil, fmt.Errorf("mp: world size %d", n)
	}
	ranks := make([]*localComm, n)
	for i := range ranks {
		ranks[i] = &localComm{rank: i, size: n, in: newInbox()}
	}
	for i := range ranks {
		ranks[i].world = ranks
	}
	out := make([]Comm, n)
	for i := range ranks {
		out[i] = ranks[i]
	}
	return out, nil
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return c.size }

func (c *localComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mp: send to unknown rank %d", to)
	}
	// Copy: the sender may reuse its buffer, as MPI allows after
	// MPI_Send returns.
	buf := append([]byte(nil), data...)
	return c.world[to].in.put(Message{From: c.rank, Tag: tag, Data: buf})
}

func (c *localComm) Recv(from, tag int) (Message, error) {
	return c.in.get(from, tag)
}

func (c *localComm) Close() error {
	c.in.close()
	return nil
}
