package mp

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"

	"loopsched/internal/acp"
	"loopsched/internal/sched"
)

func squareKernel(i int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i*i+13))
	return buf[:]
}

// runLoop executes the master/slave program over an in-process world.
func runLoop(t *testing.T, scheme sched.Scheme, iterations, workers int, opts func(int) WorkerOptions) [][]byte {
	t.Helper()
	world, err := NewWorld(workers + 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := RunWorker(world[r], opts(r)); err != nil {
				t.Errorf("worker %d: %v", r, err)
			}
		}(r)
	}
	results, rep, err := RunMaster(world[0], scheme, iterations, MasterOptions{})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks < 1 && iterations > 0 {
		t.Errorf("no chunks in report %+v", rep)
	}
	return results
}

func TestLoopInProcess(t *testing.T) {
	const n = 700
	for _, name := range []string{"SS", "TSS", "FSS", "TFSS", "DTSS", "DFISS"} {
		s, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		results := runLoop(t, s, n, 3, func(r int) WorkerOptions {
			o := WorkerOptions{Kernel: squareKernel, ACP: acpModel()}
			if r == 3 {
				o.VirtualPower = 1
				o.WorkScale = 2
			} else {
				o.VirtualPower = 2
			}
			return o
		})
		for i, r := range results {
			if !bytes.Equal(r, squareKernel(i)) {
				t.Fatalf("%s: result %d corrupted", name, i)
			}
		}
	}
}

func acpModel() acp.Model { return acp.Model{Scale: 10} }

func TestLoopOverTCP(t *testing.T) {
	const n = 300
	const workers = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master, err := ListenTCP(ln, workers+1)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := DialTCP(ln.Addr().String(), r, workers+1)
			if err != nil {
				t.Errorf("dial %d: %v", r, err)
				return
			}
			defer comm.Close()
			if err := RunWorker(comm, WorkerOptions{
				Kernel: squareKernel, VirtualPower: float64(r), ACP: acpModel(),
			}); err != nil {
				t.Errorf("worker %d: %v", r, err)
			}
		}(r)
	}
	results, rep, err := RunMaster(master, sched.DTSSScheme{}, n, MasterOptions{})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != n {
		t.Errorf("iterations %d", rep.Iterations)
	}
	for i, r := range results {
		if !bytes.Equal(r, squareKernel(i)) {
			t.Fatalf("TCP result %d corrupted", i)
		}
	}
}

func TestLoopValidation(t *testing.T) {
	world, _ := NewWorld(2)
	if _, _, err := RunMaster(world[1], sched.TSSScheme{}, 10, MasterOptions{}); err == nil {
		t.Error("non-zero-rank master accepted")
	}
	if err := RunWorker(world[0], WorkerOptions{Kernel: squareKernel}); err == nil {
		t.Error("rank-0 worker accepted")
	}
	if err := RunWorker(world[1], WorkerOptions{}); err == nil {
		t.Error("kernel-less worker accepted")
	}
	solo, _ := NewWorld(1)
	if _, _, err := RunMaster(solo[0], sched.TSSScheme{}, 10, MasterOptions{}); err == nil {
		t.Error("worker-less world accepted")
	}
}

func TestTCPValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := ListenTCP(ln, 1); err == nil {
		t.Error("1-rank TCP world accepted")
	}
	if _, err := DialTCP(ln.Addr().String(), 0, 3); err == nil {
		t.Error("rank-0 dial accepted")
	}
	if _, err := DialTCP("127.0.0.1:1", 1, 2); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTCPWorkerCannotReachPeers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master, err := ListenTCP(ln, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	w, err := DialTCP(ln.Addr().String(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Send(2, 1, nil); err == nil {
		t.Error("worker-to-worker send accepted on star topology")
	}
}

// TestTCPStress: eight TCP workers hammer one master with thousands
// of small chunks; everything must arrive intact.
func TestTCPStress(t *testing.T) {
	const n = 4000
	const workers = 8
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master, err := ListenTCP(ln, workers+1)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := DialTCP(ln.Addr().String(), r, workers+1)
			if err != nil {
				t.Errorf("dial %d: %v", r, err)
				return
			}
			defer comm.Close()
			if err := RunWorker(comm, WorkerOptions{
				Kernel:       squareKernel,
				VirtualPower: float64(1 + r%3),
				ACP:          acpModel(),
			}); err != nil {
				t.Errorf("worker %d: %v", r, err)
			}
		}(r)
	}
	// SS maximises protocol traffic: one round trip per iteration.
	results, rep, err := RunMaster(master, sched.SelfScheduling, n, MasterOptions{})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != n {
		t.Errorf("chunks = %d, want %d", rep.Chunks, n)
	}
	for i, r := range results {
		if !bytes.Equal(r, squareKernel(i)) {
			t.Fatalf("result %d corrupted under stress", i)
		}
	}
}

// TestLoopEquivalenceAcrossTransports: in-process and TCP runs of the
// same scheme produce identical result sets.
func TestLoopEquivalenceAcrossTransports(t *testing.T) {
	const n = 200
	inproc := runLoop(t, sched.TFSSScheme{}, n, 2, func(r int) WorkerOptions {
		return WorkerOptions{Kernel: squareKernel, ACP: acpModel()}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	master, err := ListenTCP(ln, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var wg sync.WaitGroup
	for r := 1; r <= 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := DialTCP(ln.Addr().String(), r, 3)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer comm.Close()
			if err := RunWorker(comm, WorkerOptions{Kernel: squareKernel, ACP: acpModel()}); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(r)
	}
	overTCP, _, err := RunMaster(master, sched.TFSSScheme{}, n, MasterOptions{})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range inproc {
		if !bytes.Equal(inproc[i], overTCP[i]) {
			t.Fatalf("transports disagree at %d", i)
		}
	}
}
