package mp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"loopsched/internal/sched"
)

func TestWorldBasics(t *testing.T) {
	world, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	if world[1].Rank() != 1 || world[1].Size() != 3 {
		t.Fatalf("rank/size wrong")
	}
	if err := world[0].Send(2, 7, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg, err := world[2].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Tag != 7 || string(msg.Data) != "hi" {
		t.Fatalf("msg %+v", msg)
	}
	if _, err := NewWorld(0); err == nil {
		t.Error("empty world accepted")
	}
	if err := world[0].Send(9, 0, nil); err == nil {
		t.Error("send to unknown rank accepted")
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	world, _ := NewWorld(2)
	buf := []byte("abc")
	if err := world[0].Send(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender reuses its buffer
	msg, err := world[1].Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "abc" {
		t.Errorf("buffer not copied: %q", msg.Data)
	}
}

func TestPerPairOrdering(t *testing.T) {
	world, _ := NewWorld(2)
	for i := 0; i < 100; i++ {
		if err := world[0].Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		msg, err := world[1].Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != byte(i) {
			t.Fatalf("order broken at %d: got %d", i, msg.Data[0])
		}
	}
}

func TestTagMatching(t *testing.T) {
	world, _ := NewWorld(2)
	world[0].Send(1, 5, []byte("five"))
	world[0].Send(1, 6, []byte("six"))
	// Receive tag 6 first even though 5 arrived first.
	msg, err := world[1].Recv(AnySource, 6)
	if err != nil || string(msg.Data) != "six" {
		t.Fatalf("tag matching: %v %q", err, msg.Data)
	}
	msg, err = world[1].Recv(AnySource, AnyTag)
	if err != nil || string(msg.Data) != "five" {
		t.Fatalf("remaining message: %v %q", err, msg.Data)
	}
}

func TestAnySourceBlocksUntilArrival(t *testing.T) {
	world, _ := NewWorld(3)
	done := make(chan Message, 1)
	go func() {
		msg, err := world[0].Recv(AnySource, AnyTag)
		if err == nil {
			done <- msg
		}
	}()
	world[2].Send(0, 9, []byte("late"))
	msg := <-done
	if msg.From != 2 || msg.Tag != 9 {
		t.Fatalf("msg %+v", msg)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	world, _ := NewWorld(2)
	errCh := make(chan error, 1)
	go func() {
		_, err := world[1].Recv(0, AnyTag)
		errCh <- err
	}()
	world[1].Close()
	if err := <-errCh; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := world[0].Send(1, 1, nil); err != ErrClosed {
		t.Fatalf("send to closed = %v, want ErrClosed", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	world, _ := NewWorld(5)
	var wg sync.WaitGroup
	const each = 200
	for r := 1; r < 5; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := world[r].Send(0, r, []byte{byte(i)}); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	counts := map[int]int{}
	for i := 0; i < 4*each; i++ {
		msg, err := world[0].Recv(AnySource, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		// Per-pair ordering: the payload must equal the count seen so
		// far from that sender.
		if int(msg.Data[0]) != counts[msg.From] {
			t.Fatalf("rank %d out of order: got %d want %d", msg.From, msg.Data[0], counts[msg.From])
		}
		counts[msg.From]++
	}
}

func TestRequestCodec(t *testing.T) {
	in := []resultEntry{
		{index: 3, data: []byte("abc")},
		{index: 0, data: nil},
		{index: 7, data: bytes.Repeat([]byte{9}, 100)},
	}
	a, cm, out, err := decodeRequest(encodeRequest(42, 777, in))
	if err != nil {
		t.Fatal(err)
	}
	if a != 42 || cm != 777 || len(out) != 3 {
		t.Fatalf("acp %d, comp %d, %d entries", a, cm, len(out))
	}
	for i := range in {
		if out[i].index != in[i].index || !bytes.Equal(out[i].data, in[i].data) {
			t.Fatalf("entry %d: %+v vs %+v", i, out[i], in[i])
		}
	}
	// Corrupt frames are rejected.
	if _, _, _, err := decodeRequest([]byte{1}); err == nil {
		t.Error("short request accepted")
	}
	if _, _, _, err := decodeRequest(append(encodeRequest(1, 0, nil), 0, 0, 0, 1)); err == nil {
		t.Error("truncated header accepted")
	}
	bad := encodeRequest(1, 0, []resultEntry{{index: 1, data: []byte("xy")}})
	if _, _, _, err := decodeRequest(bad[:len(bad)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestAssignCodec(t *testing.T) {
	for _, a := range []sched.Assignment{{Start: 0, Size: 1}, {Start: 123456, Size: 789}, {Start: 1 << 30, Size: 1}} {
		got, err := decodeAssign(encodeAssign(a))
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("roundtrip %+v -> %+v", a, got)
		}
	}
	if _, err := decodeAssign([]byte{1, 2}); err == nil {
		t.Error("bad frame accepted")
	}
}

func ExampleNewWorld() {
	world, _ := NewWorld(2)
	world[0].Send(1, 1, []byte("ping"))
	msg, _ := world[1].Recv(0, 1)
	fmt.Println(string(msg.Data))
	// Output: ping
}
