package mp

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"loopsched/internal/sched"
)

// runCancelled drives a world where the context is cancelled once the
// first kernel call lands, and asserts the master returns promptly
// with ctx.Err() while every worker unwinds cleanly (no goroutine left
// blocked on a reply that will never come).
func runCancelled(t *testing.T, master Comm, workers []Comm) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var wg sync.WaitGroup
	workerErrs := make([]error, len(workers))
	for i, wc := range workers {
		wg.Add(1)
		go func(i int, wc Comm) {
			defer wg.Done()
			workerErrs[i] = RunWorker(wc, WorkerOptions{
				Kernel: func(iter int) []byte {
					once.Do(cancel)
					return nil
				},
			})
		}(i, wc)
	}
	scheme, err := sched.Lookup("TSS")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = RunMasterContext(ctx, master, scheme, 1<<20, MasterOptions{})
	if err != context.Canceled {
		t.Fatalf("master returned %v, want context.Canceled", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not unwind after cancellation")
	}
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
}

func TestRunMasterContextCancelLocal(t *testing.T) {
	world, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range world {
			c.Close()
		}
	}()
	runCancelled(t, world[0], world[1:])
}

func TestRunMasterContextCancelTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const size = 4
	master, err := ListenTCP(ln, size)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	var workers []Comm
	for r := 1; r < size; r++ {
		wc, err := DialTCP(ln.Addr().String(), r, size)
		if err != nil {
			t.Fatal(err)
		}
		defer wc.Close()
		workers = append(workers, wc)
	}
	runCancelled(t, master, workers)
}

func TestRunMasterContextPreCancelled(t *testing.T) {
	world, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scheme, _ := sched.Lookup("FSS")
	errc := make(chan error, 1)
	go func() {
		// The lone worker never even has to run: the injected wake must
		// release the master's very first Recv.
		_, _, err := RunMasterContext(ctx, world[0], scheme, 100, MasterOptions{})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pre-cancelled master never returned")
	}
	// The worker must find a tagStop waiting for it.
	msg, err := world[1].Recv(0, AnyTag)
	if err != nil || msg.Tag != tagStop {
		t.Fatalf("worker saw (%v, %v), want tagStop", msg.Tag, err)
	}
}
