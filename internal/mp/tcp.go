package mp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// The TCP transport is a star, which is all a master/slave program
// needs: rank 0 accepts one connection per worker; worker↔worker
// messages are not supported (Send to a rank other than 0 or from a
// rank other than 0 fails). Frames are length-prefixed:
//
//	uint32 length | int32 from | int32 tag | payload
//
// exactly one frame per Send, preserving per-pair ordering over the
// TCP stream.

const frameHeader = 12

func writeFrame(w io.Writer, from, tag int, data []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(from)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(tag)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > 1<<30 {
		return Message{}, fmt.Errorf("mp: oversized frame (%d bytes)", n)
	}
	m := Message{
		From: int(int32(binary.BigEndian.Uint32(hdr[4:8]))),
		Tag:  int(int32(binary.BigEndian.Uint32(hdr[8:12]))),
		Data: make([]byte, n),
	}
	_, err := io.ReadFull(r, m.Data)
	return m, err
}

// tcpMaster is rank 0 of a TCP star.
type tcpMaster struct {
	size  int
	in    *inbox
	wg    sync.WaitGroup // accept loop + per-connection readers
	mu    sync.Mutex
	wmu   sync.Mutex // serialises frame writes (a frame is two Writes)
	conns map[int]net.Conn
	ln    net.Listener
}

// ListenTCP creates rank 0 of a `size`-rank world on the listener and
// accepts the size−1 worker connections in the background. Workers
// join with DialTCP.
func ListenTCP(ln net.Listener, size int) (Comm, error) {
	if size < 2 {
		return nil, fmt.Errorf("mp: TCP world needs ≥ 2 ranks")
	}
	m := &tcpMaster{size: size, in: newInbox(), conns: map[int]net.Conn{}, ln: ln}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.accept()
	}()
	return m, nil
}

func (m *tcpMaster) accept() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		// The accept goroutine is still counted, so this Add cannot race
		// a Wait that has already drained the group.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.serve(conn)
		}()
	}
}

// serve handles one worker connection: the first frame is a hello
// carrying the worker's rank in From; everything after feeds the
// master's inbox.
func (m *tcpMaster) serve(conn net.Conn) {
	hello, err := readFrame(conn)
	if err != nil || hello.From < 1 || hello.From >= m.size {
		conn.Close()
		return
	}
	m.mu.Lock()
	if old, dup := m.conns[hello.From]; dup {
		old.Close()
	}
	m.conns[hello.From] = conn
	m.mu.Unlock()
	for {
		msg, err := readFrame(conn)
		if err != nil {
			return
		}
		msg.From = hello.From // trust the connection, not the frame
		if m.in.put(msg) != nil {
			return
		}
	}
}

func (m *tcpMaster) Rank() int { return 0 }
func (m *tcpMaster) Size() int { return m.size }

func (m *tcpMaster) Send(to, tag int, data []byte) error {
	m.mu.Lock()
	conn, ok := m.conns[to]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mp: rank %d not connected", to)
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return writeFrame(conn, 0, tag, data)
}

func (m *tcpMaster) Recv(from, tag int) (Message, error) { return m.in.get(from, tag) }

func (m *tcpMaster) inject(msg Message) error { return m.in.put(msg) }

func (m *tcpMaster) Close() error {
	m.in.close()
	m.mu.Lock()
	for _, c := range m.conns {
		c.Close()
	}
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait() // closed conns and listener unblock every reader
	return err
}

// tcpWorker is a non-zero rank of a TCP star.
type tcpWorker struct {
	rank int
	size int
	conn net.Conn
	in   *inbox
	wg   sync.WaitGroup // reader goroutine
	wmu  sync.Mutex
}

// DialTCP joins a TCP world as `rank` (≥ 1) by connecting to rank 0.
func DialTCP(addr string, rank, size int) (Comm, error) {
	if rank < 1 || rank >= size {
		return nil, fmt.Errorf("mp: invalid worker rank %d of %d", rank, size)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := &tcpWorker{rank: rank, size: size, conn: conn, in: newInbox()}
	// Hello frame announces our rank.
	if err := writeFrame(conn, rank, 0, nil); err != nil {
		conn.Close()
		return nil, err
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.read()
	}()
	return w, nil
}

func (w *tcpWorker) read() {
	for {
		msg, err := readFrame(w.conn)
		if err != nil {
			w.in.close()
			return
		}
		msg.From = 0
		if w.in.put(msg) != nil {
			return
		}
	}
}

func (w *tcpWorker) Rank() int { return w.rank }
func (w *tcpWorker) Size() int { return w.size }

func (w *tcpWorker) Send(to, tag int, data []byte) error {
	if to != 0 {
		return fmt.Errorf("mp: TCP star only reaches rank 0, not %d", to)
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, w.rank, tag, data)
}

func (w *tcpWorker) Recv(from, tag int) (Message, error) { return w.in.get(from, tag) }

func (w *tcpWorker) Close() error {
	w.in.close()
	err := w.conn.Close()
	w.wg.Wait() // the closed conn unblocks the reader
	return err
}
