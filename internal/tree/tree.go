// Package tree implements Tree Scheduling (Kim & Purtilo 1996), the
// decentralised comparison scheme of the paper. The iteration space is
// split across the slaves up front (evenly, or by virtual power in the
// distributed variant); a slave that exhausts its share takes half of
// the remaining work of a statically chosen partner, so work migrates
// along a partner tree instead of through a central master. Results
// still flow to the coordinator, which the paper found best done "at
// predefined time intervals" rather than all at the end (§5) — both
// modes are modelled.
package tree

import (
	"container/heap"
	"fmt"

	"loopsched/internal/metrics"
	"loopsched/internal/sim"
	"loopsched/internal/trace"
	"loopsched/internal/workload"
)

// Options tune the Tree Scheduling run.
type Options struct {
	// Weighted makes the initial allocation proportional to virtual
	// power (the distributed variant of section 6.1); otherwise every
	// slave starts with an equal share (section 5.1).
	Weighted bool
	// FlushInterval is how often a slave ships accumulated results to
	// the coordinator, in seconds. 0 means 1 s; negative means
	// collect-at-end (the slower alternative the paper describes).
	FlushInterval float64
	// StealBytes is the size of a steal request/reply control message.
	// 0 means 64.
	StealBytes float64
}

func (o Options) flushInterval() float64 {
	if o.FlushInterval == 0 {
		return 1
	}
	return o.FlushInterval
}

func (o Options) stealBytes() float64 {
	if o.StealBytes <= 0 {
		return 64
	}
	return o.StealBytes
}

// Name returns the scheme label used in reports ("TreeS").
func (o Options) Name() string { return "TreeS" }

// span is a half-open iteration range.
type span struct{ lo, hi int }

func (s span) len() int { return s.hi - s.lo }

const (
	evIterDone = iota
	evStealArrive
	evStealReply
	evFlushArrive // results hit the coordinator queue
	evMasterDone  // coordinator finished receiving one flush
	evRangeArrive // initial allocation reached the slave
)

type event struct {
	t      float64
	seq    int64
	kind   int
	worker int
	from   int
	sp     span
	bytes  float64
	final  bool
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type workerState struct {
	times      metrics.Times
	queue      span // remaining local work (next unstarted iteration .. end)
	doneAt     float64
	computing  bool
	flushing   bool    // blocked shipping results to the coordinator
	stealQueue []int   // thieves waiting for this (busy) victim to poll
	pending    float64 // result bytes not yet flushed
	lastFlush  float64
	probes     []int // partner order still to try when idle
	waitingFor int   // victim of the in-flight steal probe (-1 none)
	waitSince  float64
	done       bool
	iterations int
	steals     int
}

type simulator struct {
	cluster sim.Cluster
	params  sim.Params
	opts    Options
	work    workload.Workload
	events  eventQueue
	seq     int64
	workers []workerState
	// coordinator receive queue (single server, like sim's master)
	masterBusy  bool
	masterQueue []event
	lastTime    float64
	nowT        float64
}

// Run executes the workload under Tree Scheduling on the simulated
// cluster and returns a paper-style report.
func Run(c sim.Cluster, o Options, w workload.Workload, p sim.Params) (metrics.Report, error) {
	if err := c.Validate(); err != nil {
		return metrics.Report{}, err
	}
	p = withDefaults(p)
	if p.Trace != nil {
		p.Trace.Scheme = o.Name()
		p.Trace.Workload = w.Name()
		p.Trace.Workers = len(c.Machines)
	}
	s := &simulator{
		cluster: c,
		params:  p,
		opts:    o,
		work:    w,
		workers: make([]workerState, len(c.Machines)),
	}
	if err := s.run(); err != nil {
		return metrics.Report{}, err
	}
	// Terminal idle (see sim.Run): early finishers wait for the run.
	for i := range s.workers {
		if idle := s.lastTime - s.workers[i].doneAt; idle > 0 && s.workers[i].done {
			s.workers[i].times.Wait += idle
		}
	}
	rep := metrics.Report{
		Scheme:   o.Name(),
		Workload: w.Name(),
		Workers:  len(c.Machines),
		Tp:       s.lastTime,
	}
	for i := range s.workers {
		rep.PerWorker = append(rep.PerWorker, s.workers[i].times)
		rep.Iterations += s.workers[i].iterations
		rep.Chunks += s.workers[i].steals + 1
	}
	if rep.Iterations != w.Len() {
		return rep, fmt.Errorf("tree: executed %d of %d iterations", rep.Iterations, w.Len())
	}
	return rep, nil
}

// withDefaults mirrors sim.Params' implicit defaults (kept in sync
// with sim; the fields used here are documented there).
func withDefaults(p sim.Params) sim.Params {
	if p.BaseRate <= 0 {
		p.BaseRate = 3e6
	}
	if p.RequestBytes <= 0 {
		p.RequestBytes = 64
	}
	if p.ReplyBytes <= 0 {
		p.ReplyBytes = 64
	}
	if p.BytesPerIter <= 0 {
		p.BytesPerIter = 4096
	}
	if p.MasterOverhead <= 0 {
		p.MasterOverhead = 1e-3
	}
	return p
}

// partnerOrder returns the deterministic partner probe sequence for
// worker i: its hypercube neighbours (i XOR 2^k), the tree edges along
// which Kim & Purtilo migrate work. Migration is deliberately limited
// to these partners — work does NOT flow freely between arbitrary
// pairs, which is what separates Tree Scheduling from an ideal
// work-stealing scheduler and produces the idle time the paper's
// TreeS columns show.
func partnerOrder(i, p int) []int {
	if p == 1 {
		return nil
	}
	var order []int
	seen := map[int]bool{i: true}
	for bit := 1; bit < p; bit <<= 1 {
		j := i ^ bit
		if j < p && !seen[j] {
			order = append(order, j)
			seen[j] = true
		}
	}
	if len(order) == 0 { // isolated by a non-power-of-two topology
		order = append(order, (i+1)%p)
	}
	return order
}

func (s *simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *simulator) run() error {
	heap.Init(&s.events)
	p := len(s.cluster.Machines)
	total := s.work.Len()

	// Initial allocation (the master's only scheduling act).
	shares := make([]int, p)
	if s.opts.Weighted {
		tp := s.cluster.TotalPower()
		given := 0
		for i, m := range s.cluster.Machines {
			shares[i] = int(float64(total)*m.Power/tp + 0.5)
			given += shares[i]
		}
		shares[p-1] += total - given // fix rounding drift
		if shares[p-1] < 0 {
			// Pathological rounding; rebalance from the largest share.
			for i := range shares {
				if shares[i] >= -shares[p-1] {
					shares[i] += shares[p-1]
					shares[p-1] = 0
					break
				}
			}
		}
	} else {
		for i := range shares {
			shares[i] = total / p
			if i < total%p {
				shares[i]++
			}
		}
	}
	lo := 0
	for i := range s.cluster.Machines {
		sp := span{lo, lo + shares[i]}
		lo = sp.hi
		d := s.cluster.Machines[i].Link.Transfer(s.params.ReplyBytes)
		s.workers[i].times.Comm += d
		s.workers[i].waitingFor = -1
		s.workers[i].probes = partnerOrder(i, p)
		s.push(event{t: d, kind: evRangeArrive, worker: i, sp: sp})
	}

	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.nowT = e.t
		if e.t > s.lastTime {
			s.lastTime = e.t
		}
		switch e.kind {
		case evRangeArrive:
			st := &s.workers[e.worker]
			st.queue = e.sp
			st.lastFlush = e.t
			s.startNext(e.worker, e.t)

		case evIterDone:
			st := &s.workers[e.worker]
			st.computing = false
			st.iterations++
			st.pending += s.params.BytesPerIter
			s.serveSteals(e.worker, e.t) // poll for messages between iterations
			s.maybeFlush(e.worker, e.t, false)
			s.startNext(e.worker, e.t) // no-op while a flush is in flight

		case evStealArrive:
			// A 2001 MPI slave is single-threaded: it only polls for
			// steal requests between iterations (and after flushes).
			// A busy victim therefore parks the request, which is
			// where the thieves' idle time comes from.
			victim := &s.workers[e.worker]
			victim.stealQueue = append(victim.stealQueue, e.from)
			if !victim.computing && !victim.flushing {
				s.serveSteals(e.worker, e.t)
			}

		case evStealReply:
			st := &s.workers[e.worker]
			// Split the probe round-trip: the wire time is
			// communication, the victim's polling delay is waiting.
			wire := 2 * s.cluster.Machines[e.worker].Link.Transfer(s.opts.stealBytes())
			total := e.t - st.waitSince
			if total < wire {
				wire = total
			}
			st.times.Comm += wire
			st.times.Wait += total - wire
			st.waitingFor = -1
			if e.sp.len() > 0 {
				st.queue = e.sp
				st.steals++
				st.probes = partnerOrder(e.worker, p) // reset probe order
				s.startNext(e.worker, e.t)
			} else {
				s.probeOrFinish(e.worker, e.t)
			}

		case evFlushArrive:
			s.masterQueue = append(s.masterQueue, e)
			s.serviceMaster(e.t)

		case evMasterDone:
			s.masterBusy = false
			st := &s.workers[e.worker]
			st.times.Wait += e.t - e.bytes // bytes field reused: enqueue time
			st.flushing = false
			s.serveSteals(e.worker, e.t)
			if e.final {
				st.done = true
				st.doneAt = e.t
			} else {
				s.startNext(e.worker, e.t)
			}
			s.serviceMaster(e.t)
		}
	}
	return nil
}

// serveSteals answers every parked steal request of a now-idle victim:
// halve the remaining range for the first thief, empty grants for the
// rest (the range can only be split once per poll).
func (s *simulator) serveSteals(w int, t float64) {
	victim := &s.workers[w]
	for _, thief := range victim.stealQueue {
		var grant span
		if n := victim.queue.len(); n >= 2 {
			mid := victim.queue.lo + (n+1)/2
			grant = span{mid, victim.queue.hi}
			victim.queue.hi = mid
		}
		d := s.cluster.Machines[thief].Link.Transfer(s.opts.stealBytes())
		s.push(event{t: t + d, kind: evStealReply, worker: thief, from: w, sp: grant})
	}
	victim.stealQueue = victim.stealQueue[:0]
}

// startNext begins the next local iteration, or starts probing
// partners when the local queue is empty.
func (s *simulator) startNext(w int, t float64) {
	st := &s.workers[w]
	if st.computing || st.done || st.flushing || st.waitingFor >= 0 {
		return
	}
	if st.queue.len() == 0 {
		s.probeOrFinish(w, t)
		return
	}
	i := st.queue.lo
	st.queue.lo++
	cost := s.work.Cost(i)
	d := s.cluster.Machines[w].ComputeTime(s.params.BaseRate, t, cost)
	st.times.Comp += d
	st.computing = true
	if s.params.Trace != nil {
		s.params.Trace.Add(trace.Event{Worker: w, Start: i, Size: 1, Begin: t, End: t + d})
	}
	s.push(event{t: t + d, kind: evIterDone, worker: w})
}

// probeOrFinish sends the next steal probe, or flushes and finishes
// when every partner has been tried.
func (s *simulator) probeOrFinish(w int, t float64) {
	st := &s.workers[w]
	for len(st.probes) > 0 {
		victim := st.probes[0]
		st.probes = st.probes[1:]
		if s.workers[victim].done {
			continue
		}
		d := s.cluster.Machines[w].Link.Transfer(s.opts.stealBytes())
		st.waitingFor = victim
		st.waitSince = t
		s.push(event{t: t + d, kind: evStealArrive, worker: victim, from: w})
		return
	}
	// No partners left: ship the final results and terminate.
	s.maybeFlush(w, t, true)
}

// maybeFlush ships accumulated results to the coordinator. The slave
// is blocked for the transfer and until the coordinator has received
// it — "the contention for the master cannot be totally eliminated"
// (§5); periodic flushing merely spreads it across the run instead of
// piling it all at the end.
func (s *simulator) maybeFlush(w int, t float64, final bool) {
	st := &s.workers[w]
	interval := s.opts.flushInterval()
	periodic := interval > 0 && t-st.lastFlush >= interval
	if !final && !periodic {
		return
	}
	if st.pending == 0 {
		if final {
			st.done = true
			st.doneAt = t
		}
		return
	}
	d := s.cluster.Machines[w].Link.Transfer(s.params.RequestBytes + st.pending)
	st.times.Comm += d
	st.flushing = true
	bytes := st.pending
	st.pending = 0
	st.lastFlush = t
	s.push(event{t: t + d, kind: evFlushArrive, worker: w, bytes: bytes, final: final})
}

// serviceMaster drains the coordinator's receive queue, one flush at
// a time (NIC serialisation — the contention the paper observed).
func (s *simulator) serviceMaster(t float64) {
	if s.masterBusy || len(s.masterQueue) == 0 {
		return
	}
	e := s.masterQueue[0]
	s.masterQueue = s.masterQueue[1:]
	s.masterBusy = true
	recv := s.params.MasterOverhead + e.bytes/masterBandwidth(s.cluster)
	done := event{t: t + recv, kind: evMasterDone, worker: e.worker, final: e.final, bytes: e.t}
	s.push(done)
}

func masterBandwidth(c sim.Cluster) float64 {
	if c.MasterBandwidth > 0 {
		return c.MasterBandwidth
	}
	return sim.Mbit100
}
