package tree

import (
	"reflect"
	"testing"

	"loopsched/internal/sim"
	"loopsched/internal/workload"
)

func testCluster(nFast, nSlow int) sim.Cluster {
	var ms []sim.Machine
	for i := 0; i < nFast; i++ {
		ms = append(ms, sim.Machine{Name: "fast", Power: 3,
			Link: sim.Link{Latency: 0.0002, Bandwidth: sim.Mbit100}})
	}
	for i := 0; i < nSlow; i++ {
		ms = append(ms, sim.Machine{Name: "slow", Power: 1,
			Link: sim.Link{Latency: 0.001, Bandwidth: sim.Mbit10}})
	}
	return sim.Cluster{Machines: ms}
}

func testParams() sim.Params {
	return sim.Params{BaseRate: 1e4, BytesPerIter: 16}
}

func TestPartnerOrder(t *testing.T) {
	got := partnerOrder(0, 8)
	// Hypercube tree edges only: neighbours 1, 2, 4.
	want := []int{1, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partnerOrder(0,8) = %v, want %v", got, want)
	}
	// Every worker has at least one valid partner, with no duplicates
	// and never itself; a single worker has none.
	if len(partnerOrder(0, 1)) != 0 {
		t.Error("single worker has partners")
	}
	for p := 2; p <= 9; p++ {
		for i := 0; i < p; i++ {
			order := partnerOrder(i, p)
			if len(order) == 0 {
				t.Fatalf("p=%d i=%d: no partners", p, i)
			}
			seen := map[int]bool{}
			for _, j := range order {
				if j == i || j < 0 || j >= p || seen[j] {
					t.Fatalf("p=%d i=%d: bad order %v", p, i, order)
				}
				seen[j] = true
			}
		}
	}
	// The partner graph must be connected so no work is stranded:
	// hypercube edges connect all 2^k blocks, and the (i+1)%p fallback
	// covers isolated tails.
	for p := 2; p <= 9; p++ {
		adj := make(map[int][]int)
		for i := 0; i < p; i++ {
			for _, j := range partnerOrder(i, p) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
		visited := map[int]bool{0: true}
		stack := []int{0}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, j := range adj[n] {
				if !visited[j] {
					visited[j] = true
					stack = append(stack, j)
				}
			}
		}
		if len(visited) != p {
			t.Errorf("p=%d: partner graph disconnected (%d reachable)", p, len(visited))
		}
	}
}

func TestRunCoverage(t *testing.T) {
	for _, nw := range [][2]int{{1, 0}, {1, 1}, {2, 2}, {3, 5}} {
		c := testCluster(nw[0], nw[1])
		for _, weighted := range []bool{false, true} {
			rep, err := Run(c, Options{Weighted: weighted}, workload.Uniform{N: 1777}, testParams())
			if err != nil {
				t.Fatalf("fast=%d slow=%d weighted=%v: %v", nw[0], nw[1], weighted, err)
			}
			if rep.Iterations != 1777 {
				t.Errorf("fast=%d slow=%d weighted=%v: %d iterations", nw[0], nw[1], weighted, rep.Iterations)
			}
			if rep.Tp <= 0 {
				t.Errorf("Tp = %g", rep.Tp)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	c := testCluster(2, 3)
	a, err := Run(c, Options{}, workload.LinearIncreasing{N: 900}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, Options{}, workload.LinearIncreasing{N: 900}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tree simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestMigrationBalances: on a heterogeneous cluster with an even
// initial split, stealing must move work to the fast machines, ending
// far better balanced than the no-migration bound (slow/fast comp
// ratio 3).
func TestMigrationBalances(t *testing.T) {
	c := testCluster(1, 1)
	rep, err := Run(c, Options{}, workload.Uniform{N: 3000}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.PerWorker[1].Comp / rep.PerWorker[0].Comp
	if ratio > 1.5 {
		t.Errorf("slow/fast comp ratio %.2f after migration, want ≈1", ratio)
	}
	if rep.Chunks <= 2 { // at least one steal must have happened
		t.Errorf("no migration happened: chunks=%d", rep.Chunks)
	}
	fastIters := rep.PerWorker[0].Comp // fast worker must have done >half the work
	_ = fastIters
}

// TestWeightedInitialSplit: the distributed variant starts fast
// machines with ≈3× the work, so it needs (almost) no early steals.
func TestWeightedInitialSplit(t *testing.T) {
	c := testCluster(1, 1)
	w := workload.Uniform{N: 4000}
	even, err := Run(c, Options{}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Run(c, Options{Weighted: true}, w, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Chunks > even.Chunks {
		t.Errorf("weighted split stole more (%d) than even split (%d)",
			weighted.Chunks, even.Chunks)
	}
	if weighted.Tp > even.Tp*1.05 {
		t.Errorf("weighted Tp %.3f worse than even %.3f", weighted.Tp, even.Tp)
	}
}

// TestPeriodicFlushBeatsCollectAtEnd reproduces the §5 implementation
// finding: periodic result shipping beats holding everything until the
// end (coordinator contention).
func TestPeriodicFlushBeatsCollectAtEnd(t *testing.T) {
	c := testCluster(2, 6)
	w := workload.Uniform{N: 6000}
	p := testParams()
	p.BytesPerIter = 2048 // heavy results make contention visible
	periodic, err := Run(c, Options{FlushInterval: 0.05}, w, p)
	if err != nil {
		t.Fatal(err)
	}
	atEnd, err := Run(c, Options{FlushInterval: -1}, w, p)
	if err != nil {
		t.Fatal(err)
	}
	if periodic.Tp >= atEnd.Tp {
		t.Errorf("periodic flush Tp %.3f not below collect-at-end %.3f",
			periodic.Tp, atEnd.Tp)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(sim.Cluster{}, Options{}, workload.Uniform{N: 10}, sim.Params{}); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestEmptyWorkload(t *testing.T) {
	c := testCluster(1, 1)
	rep, err := Run(c, Options{}, workload.Uniform{N: 0}, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 0 {
		t.Errorf("empty loop executed %d", rep.Iterations)
	}
}

func TestOptionsName(t *testing.T) {
	if (Options{}).Name() != "TreeS" {
		t.Errorf("Name = %q", (Options{}).Name())
	}
}
