// Package stats provides the small-sample statistics used when an
// experiment is repeated over randomised inputs (seeds, load
// patterns): mean, standard deviation, standard error and Student-t
// confidence intervals, plus a Welch test for "is scheme A really
// faster than scheme B".
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var v float64
		for _, x := range xs {
			d := x - s.Mean
			v += d * d
		}
		s.StdDev = math.Sqrt(v / float64(s.N-1))
	}
	return s
}

// StdErr is the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N < 1 {
		return 0
	}
	return s.StdDev / math.Sqrt(float64(s.N))
}

// CI95 returns the 95% confidence half-width of the mean using the
// Student-t critical value for the sample's degrees of freedom.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return math.Inf(1)
	}
	return tCrit95(s.N-1) * s.StdErr()
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// tCrit95 is the two-sided 95% Student-t critical value. Exact values
// for small df (where it matters), 1.96 asymptotically.
func tCrit95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
		2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df < len(table):
		return table[df]
	case df < 60:
		return 2.00
	default:
		return 1.96
	}
}

// Median returns the sample median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// WelchT returns Welch's t statistic and the (approximate,
// Welch–Satterthwaite) degrees of freedom for comparing two sample
// means. |t| > tCrit95(df) rejects equality at 95%.
func WelchT(a, b Summary) (t float64, df float64) {
	if a.N < 2 || b.N < 2 {
		return 0, 0
	}
	va := a.StdDev * a.StdDev / float64(a.N)
	vb := b.StdDev * b.StdDev / float64(b.N)
	if va+vb == 0 {
		if a.Mean == b.Mean {
			return 0, float64(a.N + b.N - 2)
		}
		return math.Inf(sign(a.Mean - b.Mean)), float64(a.N + b.N - 2)
	}
	t = (a.Mean - b.Mean) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	return t, df
}

// SignificantlyFaster reports whether sample a's mean is below sample
// b's with 95% confidence (one comparison, Welch test).
func SignificantlyFaster(a, b Summary) bool {
	t, df := WelchT(a, b)
	return t < -tCrit95(int(df))
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
