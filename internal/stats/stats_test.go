package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev %.4f", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("range [%g, %g]", s.Min, s.Max)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty %+v", empty)
	}
	single := Summarize([]float64{3})
	if single.StdDev != 0 || !math.IsInf(single.CI95(), 1) {
		t.Errorf("single-sample CI must be infinite: %+v", single)
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical check: the 95% CI of N(0,1) samples covers 0 roughly
	// 95% of the time.
	rng := rand.New(rand.NewSource(5))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		s := Summarize(xs)
		if math.Abs(s.Mean) <= s.CI95() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CI coverage %.3f, want ≈0.95", rate)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	// Input must not be reordered.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 {
		t.Error("Median mutated its input")
	}
}

func TestWelch(t *testing.T) {
	a := Summarize([]float64{1.0, 1.1, 0.9, 1.05, 0.95})
	b := Summarize([]float64{2.0, 2.1, 1.9, 2.05, 1.95})
	if !SignificantlyFaster(a, b) {
		t.Error("clearly separated samples not significant")
	}
	if SignificantlyFaster(b, a) {
		t.Error("slower sample reported faster")
	}
	// Overlapping samples: no significance either way.
	c := Summarize([]float64{1.0, 1.4, 0.8, 1.3, 0.9})
	d := Summarize([]float64{1.1, 1.2, 0.9, 1.35, 1.0})
	if SignificantlyFaster(c, d) || SignificantlyFaster(d, c) {
		t.Error("overlapping samples reported significant")
	}
	// Degenerate inputs.
	if SignificantlyFaster(Summarize([]float64{1}), b) {
		t.Error("n=1 sample reported significant")
	}
	t0, _ := WelchT(Summarize([]float64{1, 1}), Summarize([]float64{1, 1}))
	if t0 != 0 {
		t.Errorf("identical zero-variance samples: t = %g", t0)
	}
}

func TestTCrit(t *testing.T) {
	if tCrit95(1) != 12.706 || tCrit95(30) != 2.042 {
		t.Error("table lookup broken")
	}
	if tCrit95(45) != 2.00 || tCrit95(1000) != 1.96 {
		t.Error("asymptotic values broken")
	}
	if !math.IsInf(tCrit95(0), 1) {
		t.Error("df=0 must be infinite")
	}
}

func TestString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
}
