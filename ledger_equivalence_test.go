package loopsched_test

import (
	"context"
	"sort"
	"testing"

	"loopsched"
	"loopsched/internal/sched"
)

// chunkPair is one granted chunk's [Start, Start+Size) range.
type chunkPair struct{ Start, Size int }

// ledgerChunkSeq runs the spec under a fresh telemetry session, checks
// full iteration coverage, and returns the granted chunk boundaries
// sorted by start — the partition of [0, n) the scheduler produced —
// plus the session's ledger fetch-add total (zero when every grant went
// through the master path).
func ledgerChunkSeq(t *testing.T, spec loopsched.RunSpec) ([]chunkPair, uint64) {
	t.Helper()
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	tr := &loopsched.Trace{}
	spec.Telemetry, spec.Trace = tele, tr

	rep, err := loopsched.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	n := spec.Workload.Len()
	if rep.Iterations != n {
		t.Fatalf("iterations %d, want %d", rep.Iterations, n)
	}
	tele.Flush()

	evs := tr.Events()
	seq := make([]chunkPair, 0, len(evs))
	for _, e := range evs {
		seq = append(seq, chunkPair{e.Start, e.Size})
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].Start < seq[j].Start })
	// Regardless of which path granted them, the chunks must tile the
	// iteration space exactly: no gap, no overlap.
	next := 0
	for _, c := range seq {
		if c.Start != next || c.Size <= 0 {
			t.Fatalf("chunk sequence does not tile [0,%d): got start=%d size=%d, want start=%d", n, c.Start, c.Size, next)
		}
		next = c.Start + c.Size
	}
	if next != n {
		t.Fatalf("chunk sequence covers [0,%d), want [0,%d)", next, n)
	}
	return seq, tele.Aggregator().Snapshot().LedgerFetches
}

// stepDeterministicSchemes returns every registered scheme that
// declares step-deterministic chunk boundaries — the ledger-eligible
// set the equivalence property must hold for.
func stepDeterministicSchemes(t *testing.T) []loopsched.Scheme {
	t.Helper()
	var out []loopsched.Scheme
	for _, name := range loopsched.SchemeNames() {
		s, err := loopsched.LookupScheme(name)
		if err != nil {
			t.Fatal(err)
		}
		if sched.StepDeterministic(s) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		t.Fatal("no step-deterministic schemes registered")
	}
	return out
}

// TestLedgerTransportEquivalence is the ledger's correctness property:
// for every step-deterministic scheme, on every backend that supports
// the ledger, a run with the ledger on must produce byte-identical
// chunk boundaries to the same run with the ledger off. Workers
// computing their own chunks from a replicated table must be
// indistinguishable — in the partition of the iteration space — from
// the master handing the chunks out one round trip at a time.
func TestLedgerTransportEquivalence(t *testing.T) {
	const n = 3000
	w := loopsched.Uniform{N: n, C: 1}
	kernel := func(i int) []byte { return []byte{byte(i)} }

	backends := []struct {
		name string
		spec func(s loopsched.Scheme, ledger string) loopsched.RunSpec
	}{
		{"local-steal", func(s loopsched.Scheme, ledger string) loopsched.RunSpec {
			return loopsched.RunSpec{
				Scheme: s, Workload: w,
				Backend: loopsched.BackendLocal, LocalEngine: loopsched.EngineSteal,
				Workers: runWorkers(), Body: func(i int) {},
				Ledger: ledger,
			}
		}},
		{"rpc-binary", func(s loopsched.Scheme, ledger string) loopsched.RunSpec {
			return loopsched.RunSpec{
				Scheme: s, Workload: w,
				Backend: loopsched.BackendRPC, Workers: runWorkers(),
				Kernel: kernel,
				Ledger: ledger,
			}
		}},
		// Over net/rpc the workers cannot hold table replicas, but the
		// master's grants still come off the ledger counter — the
		// boundaries must be unchanged.
		{"rpc-netrpc", func(s loopsched.Scheme, ledger string) loopsched.RunSpec {
			return loopsched.RunSpec{
				Scheme: s, Workload: w,
				Backend: loopsched.BackendRPC, Workers: runWorkers(),
				Kernel: kernel, Transport: "netrpc",
				Ledger: ledger,
			}
		}},
	}

	for _, b := range backends {
		b := b
		t.Run(b.name, func(t *testing.T) {
			for _, s := range stepDeterministicSchemes(t) {
				s := s
				t.Run(s.Name(), func(t *testing.T) {
					t.Parallel()
					master, offFetches := ledgerChunkSeq(t, b.spec(s, "off"))
					replica, onFetches := ledgerChunkSeq(t, b.spec(s, "on"))
					if offFetches != 0 {
						t.Errorf("ledger-off run recorded %d ledger fetches", offFetches)
					}
					if onFetches == 0 {
						t.Errorf("ledger-on run recorded no ledger fetches: the ledger never engaged")
					}
					if len(master) != len(replica) {
						t.Fatalf("ledger produced %d chunks, master produced %d", len(replica), len(master))
					}
					for i := range master {
						if master[i] != replica[i] {
							t.Fatalf("chunk %d diverged: master %+v, ledger %+v", i, master[i], replica[i])
						}
					}
				})
			}
		})
	}
}

// TestLedgerIneligibleSchemeFallsBack pins the advisory contract:
// turning the ledger on for a scheme that is not step-deterministic is
// not an error — the run silently stays on the master path and still
// covers the loop.
func TestLedgerIneligibleSchemeFallsBack(t *testing.T) {
	scheme, err := loopsched.LookupScheme("AWF")
	if err != nil {
		t.Fatal(err)
	}
	if sched.StepDeterministic(scheme) {
		t.Fatal("AWF unexpectedly declares step-deterministic boundaries")
	}
	for _, backend := range []struct {
		name string
		spec loopsched.RunSpec
	}{
		{"local-steal", loopsched.RunSpec{
			Scheme: scheme, Workload: loopsched.Uniform{N: 1200, C: 1},
			Backend: loopsched.BackendLocal, LocalEngine: loopsched.EngineSteal,
			Workers: runWorkers(), Body: func(i int) {}, Ledger: "on",
		}},
		{"rpc", loopsched.RunSpec{
			Scheme: scheme, Workload: loopsched.Uniform{N: 1200, C: 1},
			Backend: loopsched.BackendRPC, Workers: runWorkers(),
			Kernel: func(i int) []byte { return nil }, Ledger: "on",
		}},
	} {
		backend := backend
		t.Run(backend.name, func(t *testing.T) {
			_, fetches := ledgerChunkSeq(t, backend.spec)
			if fetches != 0 {
				t.Errorf("ineligible scheme recorded %d ledger fetches", fetches)
			}
		})
	}
}

// TestLedgerHierarchyRun drives the two-level RPC runtime with the
// ledger on: each submaster arms a stage-local ledger per super-chunk
// grant, and the run must still tile the iteration space exactly while
// recording ledger activity. (Byte-identical stage boundaries ledger
// vs policy are proven per super-chunk in internal/hier, where the
// stage inputs can be held fixed; end-to-end the root's super-chunk
// splits depend on request timing, so only the tiling is comparable.)
func TestLedgerHierarchyRun(t *testing.T) {
	for _, s := range stepDeterministicSchemes(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			_, fetches := ledgerChunkSeq(t, loopsched.RunSpec{
				Scheme: s, Workload: loopsched.Uniform{N: 3000, C: 1},
				Backend: loopsched.BackendRPC, Workers: runWorkers(),
				Kernel:    func(i int) []byte { return []byte{byte(i)} },
				Hierarchy: &loopsched.Hierarchy{Shards: 2},
				Ledger:    "on",
			})
			if fetches == 0 {
				t.Error("hierarchical ledger-on run recorded no ledger fetches")
			}
		})
	}
}
