package loopsched

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"loopsched/internal/exec"
	"loopsched/internal/hier"
	"loopsched/internal/metrics"
	"loopsched/internal/mp"
	"loopsched/internal/sim"
	"loopsched/internal/telemetry"
)

// ---- The unified entry point ----
//
// Run executes one self-scheduled loop on a chosen backend. It is the
// recommended entry point: the same RunSpec — scheme, workload, and a
// description of the machines — runs unchanged on the discrete-event
// simulator, the in-process goroutine executor, the net/rpc runtime
// (self-hosted on loopback), or the message-passing substrate, flat or
// hierarchical, and always honours context cancellation.

// Backend names an execution substrate for Run.
type Backend string

const (
	// BackendSim runs the deterministic discrete-event simulator.
	BackendSim Backend = "sim"
	// BackendLocal runs goroutine workers driven by a channel master.
	BackendLocal Backend = "local"
	// BackendRPC self-hosts the net/rpc master and workers on loopback
	// TCP — the full wire protocol without external processes.
	BackendRPC Backend = "rpc"
	// BackendMP runs the MPI-style master/slave program on an
	// in-process message-passing world.
	BackendMP Backend = "mp"
)

// Hierarchy tunes the two-level (root + submasters) runtime; attach
// one to RunSpec.Hierarchy to run hierarchically. The zero value picks
// the documented defaults (⌈√p⌉ shards, halving grants, steal-half).
type Hierarchy = hier.Config

// DefaultShards returns the default submaster count for p workers.
func DefaultShards(p int) int { return hier.DefaultShards(p) }

// ShardStats is one submaster's slice of a hierarchical run; see
// Report.Shards.
type ShardStats = metrics.ShardStats

// FormatShards renders a hierarchical report's per-shard breakdown as
// a table (empty string for flat runs).
func FormatShards(r Report) string { return metrics.FormatShards(r) }

// RunSpec describes one loop execution for Run. Scheme and Workload
// are always required; the remaining fields depend on the backend:
//
//   - BackendSim uses Cluster and Sim;
//   - BackendLocal uses Workers and Body (or Kernel);
//   - BackendRPC and BackendMP use Workers and Kernel (or Body).
//
// Setting Hierarchy selects the two-level runtime on the sim, local
// and rpc backends (the mp backend is flat-only).
type RunSpec struct {
	// Scheme is the self-scheduling scheme (see LookupScheme).
	Scheme Scheme
	// Workload is the loop: its length and per-iteration costs.
	Workload Workload
	// Backend selects the substrate; empty means BackendSim.
	Backend Backend

	// Cluster describes the simulated machines (BackendSim).
	Cluster Cluster
	// Sim tunes the simulated protocol (BackendSim).
	Sim SimParams

	// Workers emulate heterogeneous slaves (local, rpc, mp backends):
	// one goroutine / RPC slave / rank per entry, slowed by WorkScale.
	Workers []*WorkerSpec
	// Body executes one iteration for its side effects. Required on
	// BackendLocal unless Kernel is set.
	Body func(i int)
	// Kernel computes one iteration and serialises its result
	// (rpc and mp backends). When nil, Body is wrapped.
	Kernel Kernel
	// ACP is the availability model distributed schemes report with.
	ACP ACPModel
	// Pipeline enables the double-buffered RPC worker protocol.
	Pipeline bool
	// Transport selects the RPC wire format: "binary" (the framing
	// codec of internal/wire, the default) or "netrpc" (net/rpc +
	// gob). Empty consults the LOOPSCHED_TRANSPORT environment
	// variable and falls back to binary. The master side needs no
	// configuration — it serves both on one listener.
	Transport string
	// CreditWindow is the batched-grant depth on the binary
	// transport: how many chunks a worker may hold beyond the one it
	// is computing (0 means 1, the classic double buffer). Larger
	// windows amortise master round trips over several chunks at the
	// cost of coarser tail balancing.
	CreditWindow int
	// Ledger requests the decentralized scheduling ledger: "on" lets
	// workers claim scheduling steps with a single fetch-and-add and
	// compute chunk boundaries from a replicated table (rpc backend,
	// binary transport), turns steal-engine refills into lock-free
	// claims (local backend, steal engine), and gives each rpc
	// submaster a stage-local ledger (hierarchies). Empty consults the
	// LOOPSCHED_LEDGER environment variable and falls back to "off".
	// The mode is advisory: schemes that are not step-deterministic
	// (adaptive and feedback schemes) silently keep the master path,
	// so "on" is always safe. See docs/LEDGER.md.
	Ledger string
	// LocalEngine selects the in-process runtime on BackendLocal:
	// "channel" (the default, also chosen by "") drives one master
	// goroutine over an unbuffered channel exactly as the paper's
	// protocol reads; "steal" runs per-worker work-stealing deques
	// with batched policy refills (internal/steal, docs/LOCAL.md).
	// CreditWindow sets the steal engine's refill batch size. Flat
	// runs only — the hierarchical local runtime has its own
	// submaster structure.
	LocalEngine string
	// DisableReplan turns off the majority re-plan (ablation). The
	// hierarchical rpc root always runs with re-planning disabled.
	DisableReplan bool
	// Trace, when non-nil, records chunk-level events (local backend;
	// for the simulator set Sim.Trace instead). With Telemetry
	// attached, the trace is rebuilt from the live event stream on
	// every backend, including rpc.
	Trace *Trace

	// Hierarchy, when non-nil, runs the two-level sharded runtime.
	Hierarchy *Hierarchy

	// Telemetry, when non-nil, streams live protocol events from the
	// run — chunk requests/grants/completions, worker joins, steals,
	// stage advances — into the session's aggregator, optional debug
	// HTTP endpoint, and optional Perfetto exporter. See NewTelemetry.
	Telemetry *Telemetry
}

// Executor runs RunSpecs on one backend. NewExecutor returns the
// implementation for a Backend; Run is the one-call convenience.
type Executor interface {
	Run(ctx context.Context, spec RunSpec) (Report, error)
}

// NewExecutor returns the Executor for a backend. The empty Backend
// means BackendSim.
func NewExecutor(b Backend) (Executor, error) {
	switch b {
	case "", BackendSim:
		return simExecutor{}, nil
	case BackendLocal:
		return localExecutor{}, nil
	case BackendRPC:
		return rpcExecutor{}, nil
	case BackendMP:
		return mpExecutor{}, nil
	default:
		return nil, fmt.Errorf("loopsched: unknown backend %q", b)
	}
}

// Run executes the spec on its backend and returns the paper-style
// report. Cancelling ctx stops the run promptly on every backend:
// masters stop handing out chunks, workers drain, and Run returns
// ctx's error (iterations already started still complete).
//
// Run is the single-job form of the scheduler service: it shares one
// spec-validation path (RunSpec.validate) and one telemetry path
// (beginTelemetry → the event bus) with Scheduler.Submit, and its
// local steal engine runs over the same fleet-shareable per-job state
// (internal/exec.JobState) the multi-tenant Scheduler multiplexes. Use
// NewScheduler when a stream of jobs should share one worker fleet.
func Run(ctx context.Context, spec RunSpec) (Report, error) {
	ex, err := NewExecutor(spec.Backend)
	if err != nil {
		return Report{}, err
	}
	finish := beginTelemetry(&spec)
	defer finish()
	return ex.Run(ctx, spec)
}

// beginTelemetry announces the run on the spec's telemetry session and
// returns the function that closes the run out (RunFinished, then a
// flush so the aggregator and exporters have seen every event before
// Run returns). When spec.Trace is also set, the trace is rebuilt from
// the event stream — a bus subscriber mirrors every completed chunk —
// so backends with no native trace plumbing (the rpc runtimes) still
// produce one; spec.Trace is cleared before dispatch so backends that
// do fill traces natively don't record each chunk twice.
func beginTelemetry(spec *RunSpec) func() {
	t := spec.Telemetry
	if t == nil || spec.Scheme == nil || spec.Workload == nil {
		return func() {}
	}
	bus := t.Bus()
	var sub telemetry.Subscriber
	if spec.Trace != nil {
		sub = telemetry.TraceSubscriber(spec.Trace)
		bus.Subscribe(sub)
		spec.Trace = nil
	}
	backend := spec.Backend
	if backend == "" {
		backend = BackendSim
	}
	workers := len(spec.Workers)
	if workers == 0 {
		workers = len(spec.Cluster.Machines)
	}
	bus.BeginRun(telemetry.RunMeta{
		Scheme:     spec.Scheme.Name(),
		Workload:   spec.Workload.Name(),
		Backend:    string(backend),
		Workers:    workers,
		Iterations: spec.Workload.Len(),
	})
	bus.Publish(telemetry.Event{Kind: telemetry.RunStarted, At: bus.Now()})
	return func() {
		bus.Publish(telemetry.Event{Kind: telemetry.RunFinished, At: bus.Now()})
		bus.Flush()
		if sub != nil {
			bus.Unsubscribe(sub)
		}
	}
}

// validate checks the whole spec: the backend-independent requirements
// plus every per-backend structural check (worker lists, transports,
// hierarchy support). It is the single validation path — Run, the
// individual executors, and Scheduler.Submit all reject bad specs
// through this function, so an error message never depends on which
// entry point saw the spec first.
func (s RunSpec) validate() error {
	if s.Scheme == nil {
		return fmt.Errorf("loopsched: RunSpec.Scheme is required")
	}
	if s.Workload == nil {
		return fmt.Errorf("loopsched: RunSpec.Workload is required")
	}
	if s.Hierarchy != nil {
		if err := s.Hierarchy.Validate(); err != nil {
			return err
		}
	}
	if _, ok := exec.LedgerMode(s.Ledger).Normalize(); !ok {
		return fmt.Errorf("loopsched: unknown ledger mode %q", s.Ledger)
	}
	switch s.Backend {
	case "", BackendSim:
		// The simulator takes its machines from Cluster; an empty
		// cluster is a valid (trivial) simulation.
	case BackendLocal:
		if len(s.Workers) == 0 {
			return fmt.Errorf("loopsched: local backend needs Workers")
		}
		if s.Hierarchy != nil && s.LocalEngine != "" && s.LocalEngine != EngineChannel {
			return fmt.Errorf("loopsched: LocalEngine %q is flat-only; hierarchical local runs use the submaster runtime", s.LocalEngine)
		}
	case BackendRPC:
		if len(s.Workers) == 0 {
			return fmt.Errorf("loopsched: rpc backend needs Workers")
		}
		if _, ok := exec.Transport(s.Transport).Normalize(); !ok {
			return fmt.Errorf("loopsched: unknown transport %q", s.Transport)
		}
	case BackendMP:
		if s.Hierarchy != nil {
			return fmt.Errorf("loopsched: the mp backend is flat-only; use sim, local or rpc for hierarchies")
		}
		if len(s.Workers) == 0 {
			return fmt.Errorf("loopsched: mp backend needs Workers")
		}
	default:
		return fmt.Errorf("loopsched: unknown backend %q", s.Backend)
	}
	return nil
}

// body returns the per-iteration side-effect function, wrapping Kernel
// when only a kernel was given.
func (s RunSpec) body() (func(i int), error) {
	if s.Body != nil {
		return s.Body, nil
	}
	if s.Kernel != nil {
		return func(i int) { s.Kernel(i) }, nil
	}
	return nil, fmt.Errorf("loopsched: RunSpec needs Body or Kernel on backend %q", s.Backend)
}

// kernel returns the result-producing kernel, wrapping Body when only
// a body was given.
func (s RunSpec) kernel() (Kernel, error) {
	if s.Kernel != nil {
		return s.Kernel, nil
	}
	if s.Body != nil {
		return func(i int) []byte { s.Body(i); return nil }, nil
	}
	return nil, fmt.Errorf("loopsched: RunSpec needs Kernel or Body on backend %q", s.Backend)
}

// virtualPowers derives V_i for each worker spec: the slowest worker
// has power 1 and the rest scale up, mirroring the paper's testbed
// power normalisation.
func virtualPowers(workers []*WorkerSpec) []float64 {
	maxScale := 1
	for _, w := range workers {
		if w.WorkScale > maxScale {
			maxScale = w.WorkScale
		}
	}
	out := make([]float64, len(workers))
	for i, w := range workers {
		s := w.WorkScale
		if s < 1 {
			s = 1
		}
		out[i] = float64(maxScale) / float64(s)
	}
	return out
}

// ---- Simulator backend ----

type simExecutor struct{}

func (simExecutor) Run(ctx context.Context, spec RunSpec) (Report, error) {
	spec.Backend = BackendSim
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	if spec.Telemetry != nil {
		spec.Sim.Telemetry = spec.Telemetry.Bus()
	}
	if spec.Hierarchy != nil {
		return hier.Simulate(ctx, spec.Cluster, spec.Scheme, spec.Workload, spec.Sim, *spec.Hierarchy)
	}
	return sim.RunContext(ctx, spec.Cluster, spec.Scheme, spec.Workload, spec.Sim)
}

// ---- Local (goroutine) backend ----

type localExecutor struct{}

func (localExecutor) Run(ctx context.Context, spec RunSpec) (Report, error) {
	spec.Backend = BackendLocal
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	body, err := spec.body()
	if err != nil {
		return Report{}, err
	}
	if spec.Hierarchy != nil {
		run := &hier.LocalRun{
			Scheme:    spec.Scheme,
			Workers:   spec.Workers,
			ACP:       spec.ACP,
			Config:    *spec.Hierarchy,
			Trace:     spec.Trace,
			Telemetry: spec.Telemetry.Bus(),
		}
		return run.Run(ctx, spec.Workload, body)
	}
	l := &LocalExecutor{
		Scheme:        spec.Scheme,
		Workers:       spec.Workers,
		ACP:           spec.ACP,
		DisableReplan: spec.DisableReplan,
		Trace:         spec.Trace,
		Telemetry:     spec.Telemetry.Bus(),
		Engine:        spec.LocalEngine,
		Window:        spec.CreditWindow,
		Ledger:        exec.LedgerMode(spec.Ledger),
	}
	return l.RunContext(ctx, spec.Workload, body)
}

// ---- net/rpc backend (self-hosted on loopback) ----

type rpcExecutor struct{}

func (rpcExecutor) Run(ctx context.Context, spec RunSpec) (Report, error) {
	spec.Backend = BackendRPC
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	kernel, err := spec.kernel()
	if err != nil {
		return Report{}, err
	}
	if spec.Hierarchy != nil {
		return runRPCHierarchy(ctx, spec, kernel)
	}
	return runRPCFlat(ctx, spec, kernel)
}

// rpcWorker builds the exec.Worker for spec.Workers[i].
func rpcWorker(spec RunSpec, kernel Kernel, powers []float64, i int) exec.Worker {
	ws := spec.Workers[i]
	return exec.Worker{
		ID:           i,
		Kernel:       kernel,
		VirtualPower: powers[i],
		LoadProbe:    ws.Load,
		ACPModel:     spec.ACP,
		WorkScale:    ws.WorkScale,
		Pipeline:     spec.Pipeline,
		Transport:    exec.Transport(spec.Transport),
		Window:       spec.CreditWindow,
		Telemetry:    spec.Telemetry.Bus(),
		TelemetryID:  i,
	}
}

func runRPCFlat(ctx context.Context, spec RunSpec, kernel Kernel) (Report, error) {
	n := spec.Workload.Len()
	p := len(spec.Workers)
	master, err := exec.NewMaster(spec.Scheme, n, p)
	if err != nil {
		return Report{}, err
	}
	master.SetTelemetry(spec.Telemetry.Bus())
	master.SetWindow(spec.CreditWindow)
	if err := master.SetLedger(exec.LedgerMode(spec.Ledger)); err != nil {
		return Report{}, err
	}
	if spec.DisableReplan {
		master.DisableReplan()
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	defer master.Shutdown(ln)
	if err := master.Serve(ln); err != nil {
		return Report{}, err
	}

	powers := virtualPowers(spec.Workers)
	var wg sync.WaitGroup
	for i := range spec.Workers {
		w := rpcWorker(spec, kernel, powers, i)
		// When the master armed its ledger, hand every worker a table
		// replica: binary-transport workers switch to one-sided claims,
		// gob workers ignore it and keep the master path — which draws
		// from the same step counter, so a mixed fleet stays exact.
		w.LedgerTable = master.Ledger()
		wg.Add(1)
		go func(w exec.Worker) {
			defer wg.Done()
			if werr := w.RunContext(ctx, ln.Addr().String()); werr != nil && ctx.Err() == nil {
				// A broken worker must not hang the run: surface its
				// error through the master.
				master.Cancel(fmt.Errorf("loopsched: rpc worker %d: %w", w.ID, werr))
			}
		}(w)
	}
	_, rep, err := master.WaitContext(ctx)
	wg.Wait()
	rep.Workload = spec.Workload.Name()
	return rep, err
}

func runRPCHierarchy(ctx context.Context, spec RunSpec, kernel Kernel) (Report, error) {
	n := spec.Workload.Len()
	p := len(spec.Workers)
	powers := virtualPowers(spec.Workers)
	k := spec.Hierarchy.Shards
	if k <= 0 {
		k = hier.DefaultShards(p)
	}
	if k > p {
		k = p
	}
	members := hier.AssignShards(powers, k)

	// The root is a stock RPC master running the hierarchy's allocator
	// as its scheme; each of its "workers" is a submaster. Steals make
	// root grants non-monotone, so mid-run re-planning must stay off.
	// The root master itself publishes no telemetry — its grants are
	// super-chunks and would double-count against the submasters' — but
	// the allocator reports steals on the bus.
	captured := new(*hier.Root)
	root, err := exec.NewMaster(hier.RootScheme{
		Config: *spec.Hierarchy,
		OnRoot: func(r *hier.Root) {
			*captured = r
			r.SetTelemetry(spec.Telemetry.Bus())
		},
	}, n, k)
	if err != nil {
		return Report{}, err
	}
	root.DisableReplan()
	rootL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Report{}, err
	}
	defer root.Shutdown(rootL)
	if err := root.Serve(rootL); err != nil {
		return Report{}, err
	}

	start := time.Now()
	subs := make([]*hier.Submaster, k)
	var wg sync.WaitGroup
	// Workers unwind through the Stop protocol: cancelling the run
	// cancels the root, whose released fetches become submaster Stops.
	// Killing the worker connections with the caller's ctx instead
	// would strand the submasters mid-count, so workers get their own
	// context, cancelled only if a submaster fails to drain.
	workerCtx, workerCancel := context.WithCancel(context.Background())
	defer workerCancel()
	for si := range members {
		sub, err := hier.NewSubmasterTransport(si, spec.Scheme, len(members[si]),
			rootL.Addr().String(), exec.Transport(spec.Transport))
		if err != nil {
			root.Cancel(err)
			break
		}
		sub.SetTelemetry(spec.Telemetry.Bus(), members[si])
		if err := sub.SetLedger(exec.LedgerMode(spec.Ledger)); err != nil {
			root.Cancel(err)
			break
		}
		defer sub.Close()
		subL, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			root.Cancel(err)
			break
		}
		defer subL.Close()
		if err := sub.Serve(subL); err != nil {
			root.Cancel(err)
			break
		}
		subs[si] = sub
		for li, wi := range members[si] {
			w := rpcWorker(spec, kernel, powers, wi)
			w.ID = li // worker ids are shard-local; telemetry keeps the global id
			w.TelemetryShard = si
			wg.Add(1)
			go func(w exec.Worker, addr string) {
				defer wg.Done()
				if werr := w.RunContext(workerCtx, addr); werr != nil && workerCtx.Err() == nil {
					root.Cancel(fmt.Errorf("loopsched: rpc worker %d: %w", w.ID, werr))
				}
			}(w, subL.Addr().String())
		}
	}

	_, rep, err := root.WaitContext(ctx)

	// Even after cancellation the submasters drain (released parked
	// fetches turn into Stops), but never wait on them unboundedly.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	for _, sub := range subs {
		if sub == nil {
			continue
		}
		if werr := sub.Wait(drainCtx); werr != nil {
			workerCancel() // kick any workers a wedged submaster stranded
			if err == nil {
				err = fmt.Errorf("loopsched: submaster did not drain: %w", werr)
			}
		}
	}
	workerCancel()
	wg.Wait()

	rep.Workload = spec.Workload.Name()
	if r := *captured; r != nil {
		rep.Steals = r.Steals()
		rep.Chunks = 0 // count submaster grants, not root super-chunks
		rep.Shards = rep.Shards[:0]
		for si, sub := range subs {
			if sub == nil {
				continue
			}
			iters, chunks, _, comp, finishedAt := sub.Counts()
			finished := 0.0
			if !finishedAt.IsZero() {
				finished = finishedAt.Sub(start).Seconds()
			}
			rep.Chunks += chunks
			rep.Shards = append(rep.Shards,
				r.Stats(si, len(members[si]), iters, chunks, comp, finished))
		}
	}
	return rep, err
}

// ---- Message-passing backend ----

type mpExecutor struct{}

func (mpExecutor) Run(ctx context.Context, spec RunSpec) (Report, error) {
	spec.Backend = BackendMP
	if err := spec.validate(); err != nil {
		return Report{}, err
	}
	kernel, err := spec.kernel()
	if err != nil {
		return Report{}, err
	}
	p := len(spec.Workers)
	world, err := mp.NewWorld(p + 1)
	if err != nil {
		return Report{}, err
	}
	defer func() {
		for _, c := range world {
			c.Close()
		}
	}()

	powers := virtualPowers(spec.Workers)
	var wg sync.WaitGroup
	workerErrs := make([]error, p)
	for i := 0; i < p; i++ {
		ws := spec.Workers[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = mp.RunWorker(world[i+1], mp.WorkerOptions{
				Kernel:       kernel,
				VirtualPower: powers[i],
				LoadProbe:    ws.Load,
				ACP:          spec.ACP,
				WorkScale:    ws.WorkScale,
			})
		}(i)
	}
	_, rep, err := mp.RunMasterContext(ctx, world[0], spec.Scheme, spec.Workload.Len(),
		mp.MasterOptions{DisableReplan: spec.DisableReplan, Telemetry: spec.Telemetry.Bus()})
	wg.Wait()
	rep.Workload = spec.Workload.Name()
	if err != nil {
		return rep, err
	}
	for i, werr := range workerErrs {
		if werr != nil {
			return rep, fmt.Errorf("loopsched: mp worker %d: %w", i, werr)
		}
	}
	return rep, nil
}
