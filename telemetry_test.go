package loopsched_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"loopsched"
)

// scrapeMetrics fetches the Prometheus text exposition from the debug
// server.
func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	return string(body)
}

// sumMetric adds up every sample of one metric family in Prometheus
// text format (labelled or not).
func sumMetric(t *testing.T, text, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // a longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	return sum
}

// TestTelemetryEndToEnd runs a small Mandelbrot loop on the pipelined
// RPC backend with a live telemetry session attached, then reconciles
// the three views of the same run against each other: the scraped
// /metrics counters, the post-hoc metrics.Report, and the execution
// trace rebuilt from the event stream. It also checks the Perfetto
// export is valid JSON with one complete slice per traced chunk.
func TestTelemetryEndToEnd(t *testing.T) {
	params := loopsched.MandelbrotParams{
		Region: loopsched.PaperRegion, Width: 96, Height: 64, MaxIter: 120,
	}
	w := loopsched.MandelbrotWorkload(params)
	kernel := func(i int) []byte { return loopsched.MandelbrotShadedColumn(params, i) }

	var perfetto bytes.Buffer
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{
		DebugAddr: "127.0.0.1:0",
		Perfetto:  &perfetto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	if tele.DebugAddr() == "" {
		t.Fatal("no debug server address")
	}

	scheme, err := loopsched.LookupScheme("DTSS")
	if err != nil {
		t.Fatal(err)
	}
	tr := &loopsched.Trace{}
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:    scheme,
		Workload:  w,
		Backend:   loopsched.BackendRPC,
		Workers:   runWorkers(),
		Kernel:    kernel,
		Pipeline:  true,
		Trace:     tr,
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != params.Width {
		t.Fatalf("report iterations %d, want %d", rep.Iterations, params.Width)
	}

	// The trace was rebuilt from the event stream: every chunk the
	// master granted was computed, completed, and mirrored into it.
	if tr.Len() != rep.Chunks {
		t.Errorf("trace has %d chunks, report says %d", tr.Len(), rep.Chunks)
	}
	if err := tr.CoverageError(params.Width); err != nil {
		t.Errorf("rebuilt trace does not tile the loop: %v", err)
	}

	// Scraped counters reconcile exactly with the report and the trace.
	text := scrapeMetrics(t, tele.DebugAddr())
	if got := sumMetric(t, text, "loopsched_chunks_granted_total"); int(got) != rep.Chunks {
		t.Errorf("scraped chunks granted %g, report says %d", got, rep.Chunks)
	}
	if got := sumMetric(t, text, "loopsched_chunks_granted_total"); int(got) != tr.Len() {
		t.Errorf("scraped chunks granted %g, trace has %d", got, tr.Len())
	}
	if got := sumMetric(t, text, "loopsched_iterations_granted_total"); int(got) != params.Width {
		t.Errorf("scraped iterations %g, want %d", got, params.Width)
	}
	if got := sumMetric(t, text, "loopsched_dropped_events_total"); got != 0 {
		t.Errorf("%g events dropped", got)
	}
	if !strings.Contains(text, `scheme="DTSS"`) || !strings.Contains(text, `backend="rpc"`) {
		t.Errorf("run info labels missing:\n%s", text)
	}

	// The aggregator snapshot agrees with the scrape.
	snap := tele.Aggregator().Snapshot()
	if int(snap.ChunksGranted) != rep.Chunks {
		t.Errorf("snapshot chunks granted %d, report says %d", snap.ChunksGranted, rep.Chunks)
	}
	if int(snap.Iterations) != params.Width {
		t.Errorf("snapshot iterations %d, want %d", snap.Iterations, params.Width)
	}

	// Closing the session finishes the Perfetto document: valid JSON,
	// one complete ("X") slice per traced chunk.
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(perfetto.Bytes()) {
		t.Fatalf("perfetto export is not valid JSON:\n%s", perfetto.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfetto.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	slices := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			slices++
		}
	}
	if slices != tr.Len() {
		t.Errorf("perfetto has %d complete slices, trace has %d chunks", slices, tr.Len())
	}
}

// TestTelemetryHierarchyReconciles runs the two-level local runtime
// under telemetry and checks the worker-level grant counters match the
// report's chunk total (the root's super-chunk grants must not be
// double-counted).
func TestTelemetryHierarchyReconciles(t *testing.T) {
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:    scheme,
		Workload:  loopsched.Uniform{N: n, C: 1},
		Backend:   loopsched.BackendLocal,
		Workers:   runWorkers(),
		Body:      func(i int) {},
		Hierarchy: &loopsched.Hierarchy{Shards: 2},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tele.Aggregator().Snapshot()
	if int(snap.ChunksGranted) != rep.Chunks {
		t.Errorf("snapshot chunks granted %d, report says %d", snap.ChunksGranted, rep.Chunks)
	}
	if int(snap.Iterations) != n {
		t.Errorf("snapshot iterations %d, want %d", snap.Iterations, n)
	}
	if int(snap.Steals) != rep.Steals {
		t.Errorf("snapshot steals %d, report says %d", snap.Steals, rep.Steals)
	}
}

// TestTelemetryMPReconciles runs the message-passing backend under
// telemetry. Completion timing there rides the *next* request, so the
// last chunk of each stopped slave never reports — grants must still
// reconcile exactly.
func TestTelemetryMPReconciles(t *testing.T) {
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	scheme, err := loopsched.LookupScheme("TFSS")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:    scheme,
		Workload:  loopsched.Uniform{N: n, C: 1},
		Backend:   loopsched.BackendMP,
		Workers:   runWorkers(),
		Body:      func(i int) {},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tele.Aggregator().Snapshot()
	if int(snap.ChunksGranted) != rep.Chunks {
		t.Errorf("snapshot chunks granted %d, report says %d", snap.ChunksGranted, rep.Chunks)
	}
	if int(snap.Iterations) != n {
		t.Errorf("snapshot iterations %d, want %d", snap.Iterations, n)
	}
}

// TestTelemetryHistogramsReconcile is the accounting identity behind
// the latency histograms: on every backend, the per-chunk queue-wait
// histogram must count exactly one observation per granted chunk, so
// its scraped _count equals both the report's chunk total and the
// loopsched_chunks_granted_total counter. A histogram that drops slow
// grants (or double-counts prefetches) breaks the identity.
func TestTelemetryHistogramsReconcile(t *testing.T) {
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1600
	kernel := func(i int) []byte { return []byte{byte(i)} }

	type result struct {
		chunks  int
		report  *loopsched.Report
		latency bool // backend fills Report.GrantLatency/CompLatency
		ledger  bool // run granted through the fetch-and-add ledger
	}
	cases := []struct {
		name string
		run  func(t *testing.T, tele *loopsched.Telemetry) result
	}{
		{"local-channel", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendLocal, Workers: runWorkers(),
				Body: func(i int) {}, Telemetry: tele,
			})
			return result{rep.Chunks, rep, true, false}
		}},
		{"local-steal", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendLocal, LocalEngine: loopsched.EngineSteal,
				Workers: runWorkers(), Body: func(i int) {}, Telemetry: tele,
			})
			return result{rep.Chunks, rep, true, false}
		}},
		{"rpc", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendRPC, Workers: runWorkers(),
				Kernel: kernel, Telemetry: tele,
			})
			return result{rep.Chunks, rep, true, false}
		}},
		// The ledger paths grant chunks without a master round trip, but
		// the accounting identity must survive: one-sided claims and
		// lock-free deque refills still publish exactly one span-tagged
		// grant per chunk and record its (near-zero) claim latency.
		{"local-steal-ledger", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendLocal, LocalEngine: loopsched.EngineSteal,
				Workers: runWorkers(), Body: func(i int) {}, Ledger: "on",
				Telemetry: tele,
			})
			return result{rep.Chunks, rep, true, true}
		}},
		{"rpc-ledger", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendRPC, Workers: runWorkers(),
				Kernel: kernel, Ledger: "on", Telemetry: tele,
			})
			return result{rep.Chunks, rep, true, true}
		}},
		{"hier-local", func(t *testing.T, tele *loopsched.Telemetry) result {
			rep := runForTelemetry(t, loopsched.RunSpec{
				Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
				Backend: loopsched.BackendLocal, Workers: runWorkers(),
				Body: func(i int) {}, Hierarchy: &loopsched.Hierarchy{Shards: 2},
				Telemetry: tele,
			})
			return result{rep.Chunks, rep, false, false}
		}},
		{"service", func(t *testing.T, tele *loopsched.Telemetry) result {
			s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
				Workers:   []*loopsched.WorkerSpec{{WorkScale: 1}, {WorkScale: 1}},
				Telemetry: tele,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			chunks := 0
			for _, tenant := range []string{"alpha", "beta"} {
				j, err := s.Submit(ctx, loopsched.JobSpec{
					Scheme: scheme, Workload: loopsched.Uniform{N: n, C: 1},
					Body: func(i int) {}, Tenant: tenant,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := j.Wait(ctx); err != nil {
					t.Fatal(err)
				}
				chunks += j.ChunksGranted()
			}
			if err := s.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			return result{chunks, nil, false, false}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{
				DebugAddr: "127.0.0.1:0",
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tele.Close()

			res := tc.run(t, tele)
			if res.chunks == 0 {
				t.Fatal("run granted no chunks")
			}
			tele.Flush()
			text := scrapeMetrics(t, tele.DebugAddr())
			if got := sumMetric(t, text, "loopsched_chunk_queue_wait_seconds_count"); int(got) != res.chunks {
				t.Errorf("queue-wait histogram counted %g chunks, run granted %d", got, res.chunks)
			}
			if got := sumMetric(t, text, "loopsched_chunks_granted_total"); int(got) != res.chunks {
				t.Errorf("scraped chunks granted %g, run granted %d", got, res.chunks)
			}
			if res.latency {
				if got := int(res.report.CompLatency.Count); got != res.chunks {
					t.Errorf("Report.CompLatency counted %d chunks, want %d", got, res.chunks)
				}
				if res.report.GrantLatency.Count == 0 {
					t.Error("Report.GrantLatency empty on a latency-measuring backend")
				}
				if res.report.CompLatency.P50 > res.report.CompLatency.P99 {
					t.Errorf("percentiles out of order: p50 %g > p99 %g",
						res.report.CompLatency.P50, res.report.CompLatency.P99)
				}
			}
			if res.ledger {
				// Ledger runs add their own identity: the fetch-add
				// counter is the round-trip histogram's count, and a run
				// that claims to use the ledger must have fetched.
				fetches := sumMetric(t, text, "loopsched_ledger_fetchadds_total")
				if fetches == 0 {
					t.Error("ledger run recorded no fetch-adds")
				}
				if got := sumMetric(t, text, "loopsched_ledger_fetch_seconds_count"); got != fetches {
					t.Errorf("ledger fetch histogram counted %g claims, counter says %g", got, fetches)
				}
			}
		})
	}
}

// runForTelemetry runs a spec and fails the test on error or short
// iteration coverage.
func runForTelemetry(t *testing.T, spec loopsched.RunSpec) *loopsched.Report {
	t.Helper()
	rep, err := loopsched.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != spec.Workload.Len() {
		t.Fatalf("iterations %d, want %d", rep.Iterations, spec.Workload.Len())
	}
	return &rep
}

// TestTelemetryWireCountersScrape asserts the bus drop counter and the
// binary-protocol frame/byte/codec counters are first-class Prometheus
// families: an RPC run over the default binary transport must leave
// non-zero frame traffic in both directions on /metrics.
func TestTelemetryWireCountersScrape(t *testing.T) {
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	scheme, err := loopsched.LookupScheme("GSS")
	if err != nil {
		t.Fatal(err)
	}
	runForTelemetry(t, loopsched.RunSpec{
		Scheme: scheme, Workload: loopsched.Uniform{N: 1200, C: 1},
		Backend: loopsched.BackendRPC, Workers: runWorkers(),
		Kernel:    func(i int) []byte { return []byte{byte(i)} },
		Pipeline:  true,
		Telemetry: tele,
	})
	tele.Flush()
	text := scrapeMetrics(t, tele.DebugAddr())

	if got := sumMetric(t, text, "loopsched_dropped_events_total"); got != 0 {
		t.Errorf("%g events dropped", got)
	}
	// Both directions carried frames, bytes rode along, and the codec
	// spent measurable (well, non-negative) time on them.
	for _, dir := range []string{"sent", "received"} {
		for _, name := range []string{"loopsched_wire_frames_total", "loopsched_wire_bytes_total", "loopsched_wire_batch_items_total"} {
			line := name + `{dir="` + dir + `"}`
			if !strings.Contains(text, line) {
				t.Fatalf("/metrics missing %s:\n%s", line, text)
			}
		}
	}
	if got := sumMetric(t, text, "loopsched_wire_frames_total"); got == 0 {
		t.Error("no wire frames counted for a binary-transport run")
	}
	if got := sumMetric(t, text, "loopsched_wire_bytes_total"); got == 0 {
		t.Error("no wire bytes counted for a binary-transport run")
	}
	if got := sumMetric(t, text, "loopsched_wire_batch_items_total"); got == 0 {
		t.Error("no wire batch items counted for a binary-transport run")
	}
	if got := sumMetric(t, text, "loopsched_wire_codec_seconds_total"); got < 0 {
		t.Errorf("negative codec seconds %g", got)
	}
}

// TestTelemetryTenantPerfettoTracks runs two tenants through the
// shared-fleet scheduler with a Perfetto export attached and checks
// each tenant gets its own named process track in the trace.
func TestTelemetryTenantPerfettoTracks(t *testing.T) {
	var perfetto bytes.Buffer
	tele, err := loopsched.NewTelemetry(loopsched.TelemetryOptions{
		Perfetto: &perfetto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	s, err := loopsched.NewScheduler(loopsched.SchedulerOptions{
		Workers:   []*loopsched.WorkerSpec{{WorkScale: 1}, {WorkScale: 1}},
		Telemetry: tele,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tenant := range []string{"alpha", "beta"} {
		j, err := s.Submit(ctx, loopsched.JobSpec{
			Scheme: scheme, Workload: loopsched.Uniform{N: 800, C: 1},
			Body: func(i int) {}, Tenant: tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tele.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfetto.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	pids := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Name != "process_name" {
			continue
		}
		name, _ := e.Args["name"].(string)
		if !strings.HasPrefix(name, "tenant ") {
			continue
		}
		pids[name] = e.Pid
	}
	if len(pids) != 2 || pids["tenant alpha"] == 0 || pids["tenant beta"] == 0 {
		t.Fatalf("tenant tracks = %v, want named tracks for alpha and beta", pids)
	}
	if pids["tenant alpha"] == pids["tenant beta"] {
		t.Fatalf("tenants share pid %d, want distinct tracks", pids["tenant alpha"])
	}
}

// TestTelemetryDisabledIsInert asserts the default path: no Telemetry
// on the spec means no events, no server, and no behaviour change.
func TestTelemetryDisabledIsInert(t *testing.T) {
	scheme, err := loopsched.LookupScheme("TSS")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loopsched.Run(context.Background(), loopsched.RunSpec{
		Scheme:   scheme,
		Workload: loopsched.Uniform{N: 500, C: 1},
		Backend:  loopsched.BackendLocal,
		Workers:  runWorkers(),
		Body:     func(i int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 500 {
		t.Fatalf("iterations %d", rep.Iterations)
	}
}
