module loopsched

go 1.22
