package loopsched

import (
	"time"

	"loopsched/internal/service"
)

// ---- The multi-tenant scheduler service ----
//
// Where Run executes one loop and tears its workers down, a Scheduler
// keeps a shared worker fleet alive and admits a stream of jobs from
// many tenants: an admission queue with per-tenant quotas, strict
// priorities with weighted-fair (deficit-round-robin) credit sharing
// inside each priority class, deadline enforcement, and a fail-queue
// that retries jobs whose attempt died. Preemption only ever withholds
// not-yet-granted chunks, so every job that succeeds executed each of
// its iterations exactly once. See docs/SERVICE.md.

// Scheduler owns a worker fleet and schedules a stream of jobs on it.
// Create one with NewScheduler, feed it with Submit, stop it with
// Drain and Close.
type Scheduler = service.Scheduler

// Job is a handle on one submitted job: Wait blocks for the terminal
// report, Report snapshots a live run, Cancel withdraws it.
type Job = service.Job

// JobSpec describes one loop job for Scheduler.Submit: the scheme,
// workload and body Run also takes, plus the tenant name, strict
// priority, fairness weight, optional deadline and retry budget.
type JobSpec = service.JobSpec

// JobState is a job's lifecycle state.
type JobState = service.State

// Job lifecycle states.
const (
	JobQueued    = service.StateQueued
	JobRunning   = service.StateRunning
	JobSucceeded = service.StateSucceeded
	JobFailed    = service.StateFailed
	JobCancelled = service.StateCancelled
)

// SchedulerStats is a point-in-time summary of a scheduler's queues.
type SchedulerStats = service.Stats

// Sentinel errors from Submit, Wait and Report; test with errors.Is.
var (
	// ErrSchedulerClosed is returned by Submit after Close, and
	// reported by jobs the closing scheduler cancelled.
	ErrSchedulerClosed = service.ErrClosed
	// ErrSchedulerDraining is returned by Submit after Drain began.
	ErrSchedulerDraining = service.ErrDraining
	// ErrJobCancelled is reported by jobs cancelled via Job.Cancel.
	ErrJobCancelled = service.ErrCancelled
	// ErrTenantQueueFull is returned by Submit when the tenant's
	// admission-queue quota is exhausted.
	ErrTenantQueueFull = service.ErrQueueFull
)

// SchedulerOptions configures NewScheduler. Only Workers is required.
type SchedulerOptions struct {
	// Workers is the shared fleet: one long-lived goroutine per entry,
	// heterogeneity emulated by WorkScale exactly as on BackendLocal.
	Workers []*WorkerSpec
	// CreditWindow is the refill batch size: how many chunks one
	// arbitration grant pulls from a job's policy (0 means the steal
	// engine's default). It is the same knob as RunSpec.CreditWindow.
	CreditWindow int
	// ACP is the availability model distributed schemes report with.
	ACP ACPModel
	// MaxActive caps concurrently running jobs fleet-wide (0 = no cap).
	MaxActive int
	// MaxActivePerTenant caps concurrently running jobs per tenant
	// (0 = no cap).
	MaxActivePerTenant int
	// MaxQueuedPerTenant caps jobs waiting for admission per tenant;
	// Submit fails with ErrTenantQueueFull beyond it (0 = no cap).
	MaxQueuedPerTenant int
	// Retries is the default re-admission budget for jobs whose
	// attempt fails (JobSpec.Retries == 0 inherits it).
	Retries int
	// RetryBackoff is the fail-queue's base delay before re-admitting
	// a failed job; attempt k waits RetryBackoff << (k-1), capped at
	// one second (0 means the service default).
	RetryBackoff time.Duration
	// FairnessQuantum is the deficit-round-robin replenishment per
	// unit of fairness weight per round, in iterations (0 means the
	// service default).
	FairnessQuantum int
	// DisableReplan turns off the majority re-plan in every job.
	DisableReplan bool
	// Telemetry, when non-nil, streams job lifecycle and chunk events
	// — tagged with job and tenant identity — into the session's
	// aggregator and exporters, exactly as RunSpec.Telemetry does for
	// single runs.
	Telemetry *Telemetry
}

// NewScheduler starts the shared fleet and returns the ready
// scheduler. It is the streaming, multi-tenant counterpart of Run:
// specs are validated on the same path, telemetry flows through the
// same event bus, and the fleet's workers run the same work-stealing
// engine as Run's local steal backend. Close the scheduler to release
// the fleet.
func NewScheduler(o SchedulerOptions) (*Scheduler, error) {
	so := service.Options{
		Workers:            o.Workers,
		Window:             o.CreditWindow,
		ACP:                o.ACP,
		MaxActive:          o.MaxActive,
		MaxActivePerTenant: o.MaxActivePerTenant,
		MaxQueuedPerTenant: o.MaxQueuedPerTenant,
		Retries:            o.Retries,
		RetryBackoff:       o.RetryBackoff,
		Quantum:            o.FairnessQuantum,
		DisableReplan:      o.DisableReplan,
	}
	if o.Telemetry != nil {
		so.Telemetry = o.Telemetry.Bus()
	}
	return service.New(so)
}
